"""ASCII renderings of matrix topology (paper Figs. 2 and 3).

``render_density_map`` draws a block-density map as a grayscale character
grid; ``render_tile_layout`` draws an AT Matrix's tile structure, marking
dense tiles with a diagonal-pattern character like the paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..core.atmatrix import ATMatrix
from ..density.map import DensityMap
from ..kinds import StorageKind

#: Grayscale ramp, light to dark.
_RAMP = " .:-=+*#%@"


def _downsample(grid: np.ndarray, max_cells: int) -> np.ndarray:
    """Average-pool a grid so neither side exceeds ``max_cells``."""
    rows, cols = grid.shape
    step = max(1, -(-max(rows, cols) // max_cells))
    if step == 1:
        return grid
    out_rows = -(-rows // step)
    out_cols = -(-cols // step)
    out = np.zeros((out_rows, out_cols))
    counts = np.zeros((out_rows, out_cols))
    row_idx = np.arange(rows) // step
    col_idx = np.arange(cols) // step
    np.add.at(out, (row_idx[:, None], col_idx[None, :]), grid)
    np.add.at(counts, (row_idx[:, None], col_idx[None, :]), 1.0)
    return out / counts


def render_density_map(
    map_: DensityMap, *, max_cells: int = 64, border: bool = True
) -> str:
    """Render a density map as a grayscale character grid.

    Darker characters mean denser blocks — the paper's Fig. 2 grayscale.
    """
    grid = _downsample(map_.grid, max_cells)
    peak = grid.max() or 1.0
    lines = []
    for row in grid:
        chars = [_RAMP[min(len(_RAMP) - 1, int(v / peak * (len(_RAMP) - 1) + 0.5))] for v in row]
        lines.append("".join(chars))
    if border:
        width = len(lines[0]) if lines else 0
        top = "+" + "-" * width + "+"
        lines = [top] + [f"|{line}|" for line in lines] + [top]
    return "\n".join(lines)


def render_tile_layout(
    matrix: ATMatrix, *, max_cells: int = 64, border: bool = True
) -> str:
    """Render tile structure: dense tiles as ``/``, sparse by grayscale.

    Mirrors paper Fig. 2a/2b where "the grayscale indicates the
    population density of sparse tiles, dense tiles are marked with a
    diagonal pattern".
    """
    zspace = matrix.zspace
    grid_rows, grid_cols = zspace.grid_rows, zspace.grid_cols
    density = np.zeros((grid_rows, grid_cols))
    dense_mask = np.zeros((grid_rows, grid_cols), dtype=bool)
    b = zspace.b_atomic
    for tile in matrix.tiles:
        br0, bc0 = tile.row0 // b, tile.col0 // b
        br1, bc1 = -(-tile.row1 // b), -(-tile.col1 // b)
        density[br0:br1, bc0:bc1] = tile.density
        if tile.kind is StorageKind.DENSE:
            dense_mask[br0:br1, bc0:bc1] = True
    small_density = _downsample(density, max_cells)
    small_dense = _downsample(dense_mask.astype(float), max_cells) >= 0.5
    peak = small_density.max() or 1.0
    lines = []
    for i in range(small_density.shape[0]):
        chars = []
        for j in range(small_density.shape[1]):
            if small_dense[i, j]:
                chars.append("/")
            else:
                v = small_density[i, j] / peak
                chars.append(_RAMP[min(len(_RAMP) - 1, int(v * (len(_RAMP) - 1) + 0.5))])
        lines.append("".join(chars))
    if border:
        width = len(lines[0]) if lines else 0
        top = "+" + "-" * width + "+"
        lines = [top] + [f"|{line}|" for line in lines] + [top]
    return "\n".join(lines)
