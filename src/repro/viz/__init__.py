"""Text rendering of density maps and AT Matrix tile layouts."""

from .ascii_map import render_density_map, render_tile_layout

__all__ = ["render_density_map", "render_tile_layout"]
