"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Hierarchy::

    ReproError
    ├── ShapeError            (ValueError)   incompatible operand shapes
    ├── FormatError           (ValueError)   payload violates format invariants
    ├── ParseError            (ValueError)   unreadable serialized matrix
    ├── ConfigError           (ValueError)   configuration value out of domain
    ├── MemoryLimitError      (RuntimeError) memory SLA unsatisfiable / pressure
    ├── PlanMismatchError     (ValueError)   ExecutionPlan replayed on wrong operands
    ├── PartitionError        (RuntimeError) quadtree partitioner inconsistency
    ├── SchedulerError        (RuntimeError) simulated scheduler invalid state
    ├── TaskFailedError       (RuntimeError) tile-product task(s) failed
    │   └── RetryExhaustedError              one task failed every allowed attempt
    ├── ResultCorruptionError (RuntimeError) a finished tile failed validation
    ├── IntegrityError        (RuntimeError) at-rest data failed verification
    ├── OperationCancelledError (RuntimeError) cooperative cancellation observed
    │   └── DeadlineExceededError            the operation's deadline expired
    └── ServiceError          (RuntimeError) matrix service request failed
        ├── AdmissionError                   job footprint breaches the memory SLA
        ├── QuotaExceededError               tenant queue quota / depth exhausted
        ├── UnknownMatrixError               request names an unregistered matrix
        ├── UnknownJobError                  request names an unknown job id
        ├── FrameTooLargeError               a protocol frame exceeds the size cap
        ├── ServiceUnavailableError          server is draining / not ready
        ├── TransportError                   client could not reach the server
        └── CircuitOpenError                 client circuit breaker is open

The task-execution errors carry structured context for the resilience
layer (:mod:`repro.resilience`): :class:`TaskFailedError` aggregates
per-pair failures from a parallel run (``pair_errors``, ``report``),
:class:`RetryExhaustedError` names the failing pair and its attempt
count, and :class:`ResultCorruptionError` describes why a finished tile
was rejected by the result guard.  The service errors are the typed
rejections of :mod:`repro.service` — each carries the offending tenant
and, where meaningful, the byte accounting behind the refusal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.report import BaseReport

    #: ``(tile_row, tile_col)`` coordinates of a result-grid pair.
    PairCoords = tuple[int, int]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """Operand shapes are incompatible (e.g. inner dimensions differ)."""


class FormatError(ReproError, ValueError):
    """A matrix payload violates its format's structural invariants."""


class ParseError(ReproError, ValueError):
    """A serialized matrix (e.g. Matrix Market) could not be parsed."""


class ConfigError(ReproError, ValueError):
    """A system/tuning configuration value is out of its valid domain."""


class MemoryLimitError(ReproError, RuntimeError):
    """A memory SLA cannot be satisfied even with the sparsest layout."""


class PlanMismatchError(ReproError, ValueError):
    """An :class:`~repro.engine.plan.ExecutionPlan` was replayed against
    operands whose structure fingerprints do not match the plan's.

    Plans are replayable only against same-topology operands: the values
    may change, but the shapes, tile grid and nonzero patterns must be
    the ones the plan was built for.
    """


class PartitionError(ReproError, RuntimeError):
    """The quadtree partitioner reached an inconsistent state."""


class SchedulerError(ReproError, RuntimeError):
    """The simulated task scheduler was driven into an invalid state."""


class TaskFailedError(ReproError, RuntimeError):
    """One or more tile-product tasks failed during a multiplication.

    Attributes
    ----------
    pair:
        The ``(tile_row, tile_col)`` pair coordinates of the failing
        task, when the error describes a single task.
    pair_errors:
        ``[(pair, exception), ...]`` for aggregated parallel failures
        collected after the worker pool drained.
    report:
        The (partially populated) execution report of the failed run,
        so completed work and busy-time statistics are not lost.
    """

    def __init__(
        self,
        message: str,
        *,
        pair: PairCoords | None = None,
        pair_errors: list[tuple[PairCoords, Exception]] | None = None,
        report: BaseReport | None = None,
    ) -> None:
        super().__init__(message)
        self.pair = pair
        self.pair_errors = list(pair_errors or [])
        self.report = report


class RetryExhaustedError(TaskFailedError):
    """A task failed on every attempt its :class:`~repro.resilience.RetryPolicy` allowed.

    Attributes
    ----------
    pair:
        The ``(tile_row, tile_col)`` coordinates of the failing pair.
    attempts:
        Number of attempts performed before giving up.
    last_error:
        The exception raised by the final attempt.
    """

    def __init__(
        self,
        message: str,
        *,
        pair: PairCoords | None = None,
        attempts: int = 0,
        last_error: Exception | None = None,
        report: BaseReport | None = None,
    ) -> None:
        super().__init__(message, pair=pair, report=report)
        self.attempts = attempts
        self.last_error = last_error


class ResultCorruptionError(ReproError, RuntimeError):
    """A finished tile failed post-execution validation.

    Raised by the result guard (:mod:`repro.resilience.guard`) when a
    finalized tile has the wrong shape, non-finite values, or a
    population that contradicts the density estimate's bound.

    Attributes
    ----------
    pair:
        The ``(tile_row, tile_col)`` coordinates of the suspect pair.
    reason:
        Machine-readable violation tag (``"shape"``, ``"non-finite"``,
        ``"nnz-bound"``).
    """

    def __init__(
        self,
        message: str,
        *,
        pair: PairCoords | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.pair = pair
        self.reason = reason


class IntegrityError(ReproError, RuntimeError):
    """Persisted or in-memory matrix data failed integrity verification.

    Raised by the deep verifier (:mod:`repro.resilience.integrity`) and
    by checksum-carrying loaders (archive format v2, the checkpoint
    journal) when stored bytes do not match their recorded CRC-32C or a
    structural invariant (CSR monotonicity, tile disjointness, dense
    finiteness) is violated.  Distinct from :class:`ParseError`, which
    covers *unreadable* input; an :class:`IntegrityError` means the
    input parsed but its content is provably corrupt.

    Attributes
    ----------
    violations:
        The :class:`~repro.resilience.integrity.IntegrityViolation`
        records behind the failure (possibly empty for single-cause
        checksum errors raised outside the verifier).
    """

    def __init__(self, message: str, *, violations: list[Any] | None = None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])


class OperationCancelledError(ReproError, RuntimeError):
    """A long-running operation observed a cooperative cancellation.

    Raised from within ``execute_plan``/the supervisor loop at the next
    tile-pair boundary after a :class:`~repro.resilience.CancelToken`
    fires.  The checkpoint (when configured) is flushed before the error
    propagates, so the interrupted work is resumable and a resubmission
    completes bit-identically.

    Attributes
    ----------
    reason:
        Free-form explanation recorded when the token was cancelled
        (e.g. ``"drain"``, ``"client request"``).
    """

    def __init__(self, message: str, *, reason: str | None = None) -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(OperationCancelledError):
    """The operation's total deadline budget expired.

    A specialization of :class:`OperationCancelledError` raised when the
    cancellation was triggered by an expired deadline rather than an
    explicit cancel request.  The service maps this onto
    ``JobState.DEADLINE_EXCEEDED`` (still resumable via resubmission).
    """


class ServiceError(ReproError, RuntimeError):
    """A matrix-service request was refused or failed.

    Attributes
    ----------
    tenant:
        The tenant whose request triggered the error (``None`` when the
        error is not tenant-specific).
    """

    def __init__(self, message: str, *, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class AdmissionError(ServiceError):
    """A job's estimated result footprint breaches the service memory SLA.

    Raised by the admission controller when even the job's sparsest
    water-level layout cannot fit the configured budget, so queueing
    would never help.

    Attributes
    ----------
    estimated_bytes:
        The job's minimal estimated result footprint.
    limit_bytes:
        The service's memory SLA in bytes.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        estimated_bytes: float = 0.0,
        limit_bytes: float = 0.0,
    ) -> None:
        super().__init__(message, tenant=tenant)
        self.estimated_bytes = estimated_bytes
        self.limit_bytes = limit_bytes


class QuotaExceededError(ServiceError):
    """A tenant's queue quota (or the global queue depth) is exhausted.

    This is the load-shedding rejection: transient by design — the same
    job resubmitted after the backlog drains is admitted.

    Attributes
    ----------
    pending:
        Jobs the tenant (or service) already has queued or running.
    quota:
        The limit that was hit.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        pending: int = 0,
        quota: int = 0,
    ) -> None:
        super().__init__(message, tenant=tenant)
        self.pending = pending
        self.quota = quota


class UnknownMatrixError(ServiceError):
    """A request referenced a matrix name the registry does not hold."""


class UnknownJobError(ServiceError):
    """A request referenced a job id the service does not know."""


class FrameTooLargeError(ServiceError):
    """A JSON-lines protocol frame exceeded the configured size cap.

    Raised server-side when a request line overruns the stream limit
    (the connection stays usable — the oversized frame is discarded and
    a typed error payload is returned) and client-side when a response
    frame does the same.

    Attributes
    ----------
    limit_bytes:
        The frame-size cap that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        limit_bytes: int = 0,
    ) -> None:
        super().__init__(message, tenant=tenant)
        self.limit_bytes = limit_bytes


class ServiceUnavailableError(ServiceError):
    """The service refused new work because it is draining or not ready.

    Transient by design: the same request against a healthy server (or
    the restarted server, for drained-but-queued jobs) succeeds.
    """


class TransportError(ServiceError):
    """The service client could not complete a network exchange.

    Wraps connect failures, timeouts, resets and truncated frames so the
    retry loop has a single retryable category distinct from typed
    server-side rejections (which must *not* be retried blindly).

    Attributes
    ----------
    cause:
        The underlying transport exception, when one exists.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        cause: Exception | None = None,
    ) -> None:
        super().__init__(message, tenant=tenant)
        self.cause = cause


class CircuitOpenError(ServiceError):
    """The client circuit breaker is open; the request was not attempted.

    Opens after ``failure_threshold`` consecutive transport failures and
    half-opens after ``reset_seconds``; a successful probe closes it.

    Attributes
    ----------
    retry_after_seconds:
        Time remaining until the breaker half-opens and allows a probe.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        retry_after_seconds: float = 0.0,
    ) -> None:
        super().__init__(message, tenant=tenant)
        self.retry_after_seconds = retry_after_seconds
