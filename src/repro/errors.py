"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """Operand shapes are incompatible (e.g. inner dimensions differ)."""


class FormatError(ReproError, ValueError):
    """A matrix payload violates its format's structural invariants."""


class ParseError(ReproError, ValueError):
    """A serialized matrix (e.g. Matrix Market) could not be parsed."""


class ConfigError(ReproError, ValueError):
    """A system/tuning configuration value is out of its valid domain."""


class MemoryLimitError(ReproError, RuntimeError):
    """A memory SLA cannot be satisfied even with the sparsest layout."""


class PartitionError(ReproError, RuntimeError):
    """The quadtree partitioner reached an inconsistent state."""


class SchedulerError(ReproError, RuntimeError):
    """The simulated task scheduler was driven into an invalid state."""
