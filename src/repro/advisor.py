"""Storage and execution advisor.

The paper's aim is "to overcome the burden for data scientists of
selecting appropriate algorithms and matrix storage representations"
(abstract) and to relieve them "from the complexity of the connections
between matrix characteristics, algorithmic complexities, optimization
and the hardware parameters of their system" (conclusion).  This module
turns that promise into an API: it inspects a staged matrix's topology
and, using the same density estimator and cost model ATMULT uses at
runtime, predicts which storage strategy and multiplication approach
will pay off — *before* any partitioning work is spent.

The predictions mirror the paper's evaluation findings: heterogeneous
topologies (distinct dense regions) profit from the AT Matrix; uniform
hypersparse matrices should stay in a single CSR tile and skip the
partitioning overhead (the paper's R7-R9 and Fig. 7 R8 cases).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import DEFAULT_CONFIG, SystemConfig
from .cost.model import CostModel
from .density.estimate import estimate_product_density
from .density.map import DensityMap
from .formats.coo import COOMatrix
from .kinds import StorageKind


@dataclass(frozen=True)
class TopologyProfile:
    """Structural statistics of a matrix's non-zero topology."""

    rows: int
    cols: int
    nnz: int
    density: float
    #: fraction of atomic blocks whose density exceeds the read threshold
    dense_block_fraction: float
    #: fraction of atomic blocks holding at least one element
    occupied_block_fraction: float
    #: Gini coefficient of per-block non-zero counts (0 uniform, ->1 skewed)
    block_skew: float
    #: mean |row - col| distance of the non-zeros, normalized by dimension
    normalized_bandwidth: float
    #: coarse label: one of uniform / hypersparse / banded / heterogeneous
    topology_class: str


@dataclass(frozen=True)
class Recommendation:
    """Advisor output for one matrix under one system configuration."""

    profile: TopologyProfile
    #: recommended whole-matrix storage when no tiling is used
    plain_storage: StorageKind
    #: whether building the AT Matrix is predicted to pay off
    partition_worthwhile: bool
    #: predicted seconds for a self-multiplication per strategy
    predicted_costs: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"matrix {self.profile.rows} x {self.profile.cols}, "
            f"nnz={self.profile.nnz}, density={100 * self.profile.density:.3f}%",
            f"topology class: {self.profile.topology_class} "
            f"(dense blocks {self.profile.dense_block_fraction:.1%}, "
            f"skew {self.profile.block_skew:.2f}, "
            f"bandwidth {self.profile.normalized_bandwidth:.2f})",
            f"plain storage: {self.plain_storage.value}",
            f"partition into AT Matrix: "
            f"{'yes' if self.partition_worthwhile else 'no'}",
        ]
        for name, cost in sorted(self.predicted_costs.items(), key=lambda kv: kv[1]):
            lines.append(f"  predicted {name}: {cost:.4f} s")
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count distribution."""
    counts = np.sort(counts.astype(np.float64).ravel())
    total = counts.sum()
    if total == 0 or len(counts) < 2:
        return 0.0
    cumulative = np.cumsum(counts)
    # Standard formula via the Lorenz curve.
    return float(
        (len(counts) + 1 - 2 * (cumulative / total).sum()) / len(counts)
    )


def profile_topology(
    staged: COOMatrix,
    config: SystemConfig | None = None,
    *,
    read_threshold: float = 0.25,
) -> TopologyProfile:
    """Compute the structural statistics driving the recommendation."""
    config = config or DEFAULT_CONFIG
    assert config.b_atomic is not None
    canonical = staged.sum_duplicates()
    dmap = DensityMap.from_coordinates(
        canonical.rows,
        canonical.cols,
        canonical.row_ids,
        canonical.col_ids,
        config.b_atomic,
    )
    block_counts = dmap.grid * dmap.block_areas()
    occupied = block_counts > 0
    dense_fraction = float((dmap.grid >= read_threshold).mean())
    occupied_fraction = float(occupied.mean())
    skew = _gini(block_counts[occupied]) if occupied.any() else 0.0
    if canonical.nnz:
        distances = np.abs(canonical.row_ids - canonical.col_ids)
        bandwidth = float(distances.mean() / max(1, max(canonical.shape) - 1))
    else:
        bandwidth = 0.0

    # Classification precedence: overall density first, then a tight
    # diagonal band (even when the band itself yields dense diagonal
    # blocks — the *global* structure is the band), then distinct dense
    # regions, then the sparse uniform classes.
    if canonical.density >= read_threshold:
        label = "dense"
    elif canonical.nnz and bandwidth < 0.02 and occupied_fraction < 0.3:
        label = "banded"
    elif dense_fraction >= 0.02:
        label = "heterogeneous"
    elif canonical.density < 1e-3:
        label = "hypersparse"
    else:
        label = "uniform"
    return TopologyProfile(
        rows=canonical.rows,
        cols=canonical.cols,
        nnz=canonical.nnz,
        density=canonical.density,
        dense_block_fraction=dense_fraction,
        occupied_block_fraction=occupied_fraction,
        block_skew=skew,
        normalized_bandwidth=bandwidth,
        topology_class=label,
    )


def recommend(
    staged: COOMatrix,
    config: SystemConfig | None = None,
    *,
    cost_model: CostModel | None = None,
) -> Recommendation:
    """Advise on storage and multiplication strategy for a matrix.

    Predicted costs cover a self-multiplication ``C = A @ A`` — the
    paper's benchmark workload — for the plain strategies and a
    tile-granular execution estimate derived from the block-density map.
    """
    config = config or DEFAULT_CONFIG
    cost_model = cost_model or CostModel()
    profile = profile_topology(
        staged, config, read_threshold=cost_model.read_threshold
    )
    canonical = staged.sum_duplicates()
    assert config.b_atomic is not None
    dmap = DensityMap.from_coordinates(
        canonical.rows,
        canonical.cols,
        canonical.row_ids,
        canonical.col_ids,
        config.b_atomic,
    )
    estimate = estimate_product_density(dmap, dmap)
    rho = canonical.density
    rho_c = estimate.overall_density()
    m = canonical.rows
    k = canonical.cols
    n = canonical.cols

    costs = {
        "spspsp_gemm": cost_model.product_cost(
            StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE,
            m, k, n, rho, rho, rho_c,
        ),
        "spspd_gemm": cost_model.product_cost(
            StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.DENSE,
            m, k, n, rho, rho, rho_c,
        ),
        "ddd_gemm": cost_model.product_cost(
            StorageKind.DENSE, StorageKind.DENSE, StorageKind.DENSE,
            m, k, n, rho, rho, rho_c,
        ),
    }
    costs["atmult"] = _tiled_cost_estimate(cost_model, dmap, estimate, config)

    plain = (
        StorageKind.DENSE
        if rho >= cost_model.read_threshold
        else StorageKind.SPARSE
    )
    best_plain = min(v for k_, v in costs.items() if k_ != "atmult")
    partition_worthwhile = costs["atmult"] < best_plain and profile.nnz > 0

    notes = []
    if profile.topology_class in ("banded", "hypersparse"):
        notes.append(
            "uniform hypersparse topology: the paper finds little "
            "optimization potential here (R7-R9); partitioning overhead "
            "may exceed one multiplication (Fig. 7)"
        )
    if profile.dense_block_fraction > 0.05:
        notes.append(
            "distinct dense regions detected: the AT Matrix's strongest "
            "case (paper R1/R3/R5/R6)"
        )
    return Recommendation(
        profile=profile,
        plain_storage=plain,
        partition_worthwhile=partition_worthwhile,
        predicted_costs=costs,
        notes=notes,
    )


def _tiled_cost_estimate(
    model: CostModel,
    dmap: DensityMap,
    estimate: DensityMap,
    config: SystemConfig,
) -> float:
    """Predicted ATMULT cost from block maps, without partitioning.

    Approximates the tile loop at atomic-block granularity: every block
    product is charged its cheapest-kernel cost given the operand block
    densities and the target block's estimated density.
    """
    assert config.b_atomic is not None
    block = config.b_atomic
    a_grid = dmap.grid
    c_grid = estimate.grid
    q = a_grid.shape[1]
    total = 0.0
    target_dense = c_grid >= model.write_threshold
    # Per inner block index, vectorize the per-target-block cost: each
    # block product is charged the cheaper of the sparse-expansion and
    # dense kernels, plus the write cost of its target representation.
    for inner in range(q):
        rho_a_col = a_grid[:, inner][:, None]  # contributions to rows
        rho_b_row = a_grid[inner, :][None, :]  # self-multiply: B = A
        active = (rho_a_col * rho_b_row) > 0
        if not active.any():
            continue
        flops = float(block) ** 3 * rho_a_col * rho_b_row
        sparse_cost = (
            model.coefficients.sparse_expand * flops
            + model.coefficients.sparse_sort * flops * np.log2(np.maximum(2.0, flops))
        )
        dense_cost = model.coefficients.dense_flop * float(block) ** 3
        compute = np.minimum(sparse_cost, dense_cost)
        write = np.where(
            target_dense,
            model.coefficients.dense_write * float(block) ** 2,
            model.coefficients.sparse_write * c_grid * float(block) ** 2,
        )
        total += float(
            (compute[active] + write[active]).sum()
            + model.coefficients.task_overhead * active.sum()
        )
    return total
