"""Tests for the sampling-based result-size estimator."""

import numpy as np
import pytest

from repro.density.sample import sample_product_size
from repro.errors import ShapeError

from ..conftest import as_csr, random_sparse_array


class TestExactWhenFullySampled:
    def test_result_nnz_exact(self, rng):
        a = random_sparse_array(rng, 30, 30, 0.15)
        b = random_sparse_array(rng, 30, 30, 0.15)
        estimate = sample_product_size(as_csr(a), as_csr(b), sample_rows=30)
        actual = np.count_nonzero(a @ b)
        assert estimate.result_nnz == pytest.approx(actual)
        assert estimate.sampled_rows == 30

    def test_flops_exact(self, rng):
        a = random_sparse_array(rng, 20, 25, 0.2)
        b = random_sparse_array(rng, 25, 15, 0.2)
        estimate = sample_product_size(as_csr(a), as_csr(b), sample_rows=20)
        # flops = sum over nonzeros A[i,k] of nnz(B row k).
        b_row_nnz = (b != 0).sum(axis=1)
        expected_flops = sum(
            int(b_row_nnz[np.nonzero(a[i])[0]].sum()) for i in range(20)
        )
        assert estimate.flops == pytest.approx(expected_flops)


class TestSampling:
    def test_partial_sample_close_on_uniform(self, rng):
        a = random_sparse_array(rng, 200, 200, 0.05)
        estimate = sample_product_size(
            as_csr(a), as_csr(a), sample_rows=80, seed=1
        )
        actual = np.count_nonzero(a @ a)
        assert abs(estimate.result_nnz - actual) / actual < 0.25

    def test_deterministic_in_seed(self, rng):
        a = as_csr(random_sparse_array(rng, 60, 60, 0.1))
        first = sample_product_size(a, a, sample_rows=10, seed=3)
        second = sample_product_size(a, a, sample_rows=10, seed=3)
        assert first == second

    def test_empty_matrix(self):
        from repro.formats.csr import CSRMatrix

        empty = CSRMatrix.empty(10, 10)
        estimate = sample_product_size(empty, empty, sample_rows=5)
        assert estimate.result_nnz == 0
        assert estimate.flops == 0

    def test_shape_mismatch(self, rng):
        a = as_csr(random_sparse_array(rng, 5, 6, 0.5))
        with pytest.raises(ShapeError):
            sample_product_size(a, a)

    def test_invalid_sample_size(self, rng):
        a = as_csr(random_sparse_array(rng, 5, 5, 0.5))
        with pytest.raises(ShapeError):
            sample_product_size(a, a, sample_rows=0)
