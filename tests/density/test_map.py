"""Tests for block-density maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.density import DensityMap
from repro.errors import FormatError, ShapeError

from ..conftest import random_sparse_array


class TestConstruction:
    def test_from_dense_counts_blocks(self):
        array = np.zeros((4, 4))
        array[:2, :2] = 1.0
        dm = DensityMap.from_dense(array, block=2)
        np.testing.assert_allclose(dm.grid, [[1.0, 0.0], [0.0, 0.0]])

    def test_boundary_blocks_normalized_by_clipped_area(self):
        array = np.ones((3, 5))  # blocks of 2: boundary blocks are partial
        dm = DensityMap.from_dense(array, block=2)
        # Full matrix of ones -> every block must report density 1.0.
        np.testing.assert_allclose(dm.grid, np.ones((2, 3)))

    def test_uniform(self):
        dm = DensityMap.uniform(8, 8, 4, 0.5)
        assert dm.grid_shape == (2, 2)
        assert dm.overall_density() == pytest.approx(0.5)

    def test_grid_shape_validated(self):
        with pytest.raises(FormatError):
            DensityMap(4, 4, 2, np.zeros((3, 2)))

    def test_density_bounds_validated(self):
        with pytest.raises(FormatError):
            DensityMap(4, 4, 2, np.full((2, 2), 1.5))

    def test_from_coordinates(self):
        dm = DensityMap.from_coordinates(4, 4, np.array([0, 3]), np.array([0, 3]), 2)
        assert dm.grid[0, 0] == 0.25
        assert dm.grid[1, 1] == 0.25


class TestStatistics:
    def test_estimated_nnz_matches_actual(self, rng):
        array = random_sparse_array(rng, 20, 30, 0.2)
        dm = DensityMap.from_dense(array, block=7)
        assert dm.estimated_nnz() == pytest.approx(np.count_nonzero(array))

    def test_overall_density(self, rng):
        array = random_sparse_array(rng, 16, 16, 0.3)
        dm = DensityMap.from_dense(array, block=4)
        assert dm.overall_density() == pytest.approx(np.count_nonzero(array) / 256)

    def test_region_density(self):
        array = np.zeros((8, 8))
        array[:4, :4] = 1.0
        dm = DensityMap.from_dense(array, block=2)
        assert dm.region_density(0, 4, 0, 4) == pytest.approx(1.0)
        assert dm.region_density(4, 8, 4, 8) == pytest.approx(0.0)
        assert dm.region_density(0, 8, 0, 8) == pytest.approx(0.25)

    def test_unaligned_region_measured_over_covering_blocks(self):
        array = np.zeros((8, 8))
        array[:2, :2] = 1.0
        dm = DensityMap.from_dense(array, block=2)
        # Region [1:4, 0:4) covers block rows 0-1: same as [0:4, 0:4).
        assert dm.region_density(1, 4, 0, 4) == dm.region_density(0, 4, 0, 4)

    def test_region_outside_rejected(self):
        dm = DensityMap.uniform(8, 8, 2, 0.5)
        with pytest.raises(ShapeError):
            dm.region_density(0, 9, 0, 4)

    def test_block_areas(self):
        dm = DensityMap.uniform(5, 3, 2, 0.0)
        areas = dm.block_areas()
        assert areas[0, 0] == 4
        assert areas[2, 1] == 1  # 1x1 corner block


class TestProperties:
    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 8), st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_nnz_conservation(self, rows, cols, block, seed):
        rng = np.random.default_rng(seed)
        array = random_sparse_array(rng, rows, cols, 0.3)
        dm = DensityMap.from_dense(array, block=block)
        assert dm.estimated_nnz() == pytest.approx(np.count_nonzero(array))
        assert 0.0 <= dm.grid.min() and dm.grid.max() <= 1.0
