"""Tests for the probability-propagation density estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.density import DensityMap, estimate_product_density
from repro.density.estimate import coarsen, estimate_scalar_density, estimated_result_nnz
from repro.errors import ShapeError

from ..conftest import random_sparse_array


class TestScalarEstimator:
    def test_zero_inputs(self):
        assert estimate_scalar_density(0.0, 0.5, 100) == 0.0

    def test_full_inputs(self):
        assert estimate_scalar_density(1.0, 1.0, 5) == 1.0

    def test_formula(self):
        # 1 - (1 - 0.1 * 0.2) ** 10
        expected = 1 - (1 - 0.02) ** 10
        assert estimate_scalar_density(0.1, 0.2, 10) == pytest.approx(expected)

    def test_monotone_in_density(self):
        values = [estimate_scalar_density(rho, 0.3, 50) for rho in (0.01, 0.1, 0.5)]
        assert values == sorted(values)

    def test_monotone_in_inner_dim(self):
        values = [estimate_scalar_density(0.1, 0.1, k) for k in (1, 10, 100)]
        assert values == sorted(values)

    def test_invalid_density_rejected(self):
        with pytest.raises(ShapeError):
            estimate_scalar_density(1.5, 0.5, 10)


class TestMapEstimator:
    def test_exact_for_deterministic_blocks(self):
        """Density-1 operand blocks give density-1 result blocks."""
        a = DensityMap.uniform(4, 4, 2, 1.0)
        est = estimate_product_density(a, a)
        np.testing.assert_allclose(est.grid, np.ones((2, 2)))

    def test_zero_operand_gives_zero(self):
        a = DensityMap.uniform(4, 4, 2, 0.0)
        b = DensityMap.uniform(4, 4, 2, 0.7)
        est = estimate_product_density(a, b)
        np.testing.assert_allclose(est.grid, np.zeros((2, 2)))

    def test_block_structure_propagates(self):
        """A block-diagonal operand keeps the result block-diagonal."""
        grid = np.array([[1.0, 0.0], [0.0, 1.0]])
        a = DensityMap(4, 4, 2, grid)
        est = estimate_product_density(a, a)
        np.testing.assert_allclose(est.grid, grid)

    def test_block_size_mismatch_rejected(self):
        a = DensityMap.uniform(4, 4, 2, 0.5)
        b = DensityMap.uniform(4, 4, 4, 0.5)
        with pytest.raises(ShapeError):
            estimate_product_density(a, b)

    def test_inner_dim_mismatch_rejected(self):
        a = DensityMap.uniform(4, 6, 2, 0.5)
        b = DensityMap.uniform(4, 4, 2, 0.5)
        with pytest.raises(ShapeError):
            estimate_product_density(a, b)

    def test_estimate_close_to_actual_for_uniform_random(self, rng):
        a = random_sparse_array(rng, 64, 64, 0.05)
        b = random_sparse_array(rng, 64, 64, 0.05)
        map_a = DensityMap.from_dense(a, block=16)
        map_b = DensityMap.from_dense(b, block=16)
        estimated = estimated_result_nnz(map_a, map_b)
        actual = np.count_nonzero(a @ b)
        # Probability propagation should land within ~25% for uniform data.
        assert abs(estimated - actual) / max(actual, 1) < 0.25

    def test_rectangular_shapes(self):
        a = DensityMap.uniform(6, 10, 4, 0.3)
        b = DensityMap.uniform(10, 3, 4, 0.4)
        est = estimate_product_density(a, b)
        assert est.shape == (6, 3)
        assert est.block == 4


class TestCoarsen:
    def test_factor_one_is_identity(self):
        dm = DensityMap.uniform(8, 8, 2, 0.5)
        assert coarsen(dm, 1) is dm

    def test_preserves_total_nnz(self, rng):
        array = random_sparse_array(rng, 24, 17, 0.3)
        dm = DensityMap.from_dense(array, block=2)
        coarse = coarsen(dm, 4)
        assert coarse.block == 8
        assert coarse.estimated_nnz() == pytest.approx(dm.estimated_nnz())

    def test_invalid_factor(self):
        with pytest.raises(ShapeError):
            coarsen(DensityMap.uniform(4, 4, 2, 0.1), 0)


class TestEstimatorProperties:
    @given(
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_bounds(self, rho_a, rho_b, k):
        est = estimate_scalar_density(rho_a, rho_b, k)
        assert 0.0 <= est <= 1.0
        # Never below the single-trial probability, never above union bound.
        assert est >= rho_a * rho_b - 1e-12 or k == 0
        assert est <= min(1.0, k * rho_a * rho_b + 1e-12)

    @given(st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_map_estimate_within_bounds(self, seed):
        rng = np.random.default_rng(seed)
        a = DensityMap(8, 8, 2, rng.random((4, 4)))
        b = DensityMap(8, 8, 2, rng.random((4, 4)))
        est = estimate_product_density(a, b)
        assert est.grid.min() >= 0.0
        assert est.grid.max() <= 1.0
