"""Tests for the water-level memory-bounded threshold method."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SystemConfig
from repro.density import DensityMap, water_level_threshold
from repro.density.water_level import memory_at_threshold
from repro.errors import MemoryLimitError


CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def make_map(densities: np.ndarray, block: int = 16) -> DensityMap:
    rows = densities.shape[0] * block
    cols = densities.shape[1] * block
    return DensityMap(rows, cols, block, densities.astype(float))


class TestUnlimited:
    def test_no_limit_allows_all_dense(self):
        dm = make_map(np.array([[0.1, 0.9], [0.5, 0.0]]))
        result = water_level_threshold(dm, None, CONFIG)
        assert result.threshold == 0.0
        assert result.dense_blocks == 4
        assert result.total_bytes == result.all_dense_bytes

    def test_infinite_limit(self):
        dm = make_map(np.array([[0.5]]))
        result = water_level_threshold(dm, float("inf"), CONFIG)
        assert result.threshold == 0.0


class TestLimited:
    def test_limit_below_all_sparse_raises(self):
        dm = make_map(np.array([[0.5, 0.5]]))
        with pytest.raises(MemoryLimitError):
            water_level_threshold(dm, 10.0, CONFIG)

    def test_tight_limit_forces_all_sparse(self):
        dm = make_map(np.array([[0.1, 0.2]]))
        all_sparse = memory_at_threshold(dm, 2.0, CONFIG)
        result = water_level_threshold(dm, all_sparse, CONFIG)
        assert result.dense_blocks == 0
        assert result.total_bytes == pytest.approx(all_sparse)
        # Threshold sits above every block density.
        assert result.threshold > dm.grid.max()

    def test_partial_limit_selects_densest_blocks(self):
        dm = make_map(np.array([[0.05, 0.9], [0.4, 0.1]]))
        area = 16 * 16
        # Allow the two densest blocks dense, the rest sparse.
        limit = (
            2 * area * CONFIG.dense_element_bytes
            + (0.05 + 0.1) * area * CONFIG.sparse_element_bytes
        )
        result = water_level_threshold(dm, limit, CONFIG)
        assert result.dense_blocks == 2
        assert result.threshold == pytest.approx(0.4)
        assert result.total_bytes <= limit

    def test_memory_at_threshold_consistent_with_result(self):
        rng = np.random.default_rng(9)
        dm = make_map(rng.random((6, 6)))
        limit = 0.6 * memory_at_threshold(dm, 0.0, CONFIG)
        try:
            result = water_level_threshold(dm, limit, CONFIG)
        except MemoryLimitError:
            return
        assert memory_at_threshold(dm, result.threshold, CONFIG) <= limit + 1e-6

    def test_ties_handled(self):
        dm = make_map(np.full((2, 2), 0.3))
        area = 16 * 16
        # Enough for sparse-all plus one dense block, but a threshold at
        # 0.3 would make all four dense: the level must stay above 0.3.
        limit = 4 * 0.3 * area * CONFIG.sparse_element_bytes + area * 2
        result = water_level_threshold(dm, limit, CONFIG)
        assert memory_at_threshold(dm, result.threshold, CONFIG) <= limit


class TestWaterLevelProperties:
    @given(st.integers(0, 500), st.floats(0.1, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_memory_bound_always_honored(self, seed, fraction):
        rng = np.random.default_rng(seed)
        dm = make_map(rng.random((4, 5)))
        all_sparse = memory_at_threshold(dm, 2.0, CONFIG)
        all_dense = memory_at_threshold(dm, 0.0, CONFIG)
        limit = all_sparse + fraction * max(0.0, all_dense - all_sparse)
        result = water_level_threshold(dm, limit, CONFIG)
        assert result.total_bytes <= limit + 1e-9
        assert memory_at_threshold(dm, result.threshold, CONFIG) <= limit + 1e-9

    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_limit(self, seed):
        """A looser limit never yields a higher (stricter) threshold."""
        rng = np.random.default_rng(seed)
        dm = make_map(rng.random((4, 4)))
        all_sparse = memory_at_threshold(dm, 2.0, CONFIG)
        all_dense = memory_at_threshold(dm, 0.0, CONFIG)
        span = max(0.0, all_dense - all_sparse)
        tight = water_level_threshold(dm, all_sparse + 0.2 * span, CONFIG)
        loose = water_level_threshold(dm, all_sparse + 0.8 * span, CONFIG)
        assert loose.threshold <= tight.threshold + 1e-12
        assert loose.dense_blocks >= tight.dense_blocks
