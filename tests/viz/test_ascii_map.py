"""Tests for the ASCII topology renderings."""

import numpy as np

from repro import COOMatrix, build_at_matrix
from repro.density import DensityMap
from repro.viz import render_density_map, render_tile_layout

from ..conftest import heterogeneous_array


class TestDensityMapRendering:
    def test_dense_region_darker_than_empty(self):
        grid = np.array([[1.0, 0.0], [0.0, 0.0]])
        text = render_density_map(DensityMap(4, 4, 2, grid), border=False)
        lines = text.splitlines()
        assert lines[0][0] == "@"  # densest block uses the darkest glyph
        assert lines[1][1] == " "

    def test_border(self):
        text = render_density_map(DensityMap.uniform(4, 4, 2, 0.5))
        lines = text.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert all(line.startswith("|") for line in lines[1:-1])

    def test_downsampling_caps_size(self):
        dm = DensityMap.uniform(512, 512, 2, 0.3)  # 256x256 grid
        text = render_density_map(dm, max_cells=32, border=False)
        lines = text.splitlines()
        assert len(lines) <= 32
        assert all(len(line) <= 32 for line in lines)

    def test_all_zero_map(self):
        text = render_density_map(DensityMap.uniform(8, 8, 2, 0.0), border=False)
        assert set(text.replace("\n", "")) == {" "}


class TestTileLayoutRendering:
    def test_dense_tiles_marked(self, rng, small_config):
        array = heterogeneous_array(rng, 96, 96)
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        text = render_tile_layout(at, border=False)
        assert "/" in text  # dense tiles present and marked

    def test_shape_matches_grid(self, rng, small_config):
        array = heterogeneous_array(rng, 96, 64)
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        lines = render_tile_layout(at, border=False).splitlines()
        assert len(lines) == at.zspace.grid_rows
        assert len(lines[0]) == at.zspace.grid_cols
