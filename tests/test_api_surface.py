"""The public API surface: docs drift, Session facade, CacheStats.

Guards the finished API shell around the engine: every exported symbol
is documented, ``Session.solve`` is a bit-for-bit facade over the named
solver functions, ``Session`` works as a context manager that exports
its observation on exit, and ``cache_stats()`` returns the typed
:class:`~repro.engine.cache.CacheStats` view.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import CacheStats, COOMatrix, Session, build_at_matrix
from repro.errors import ConfigError
from repro.solve import conjugate_gradient, jacobi, richardson

from .conftest import random_sparse_array

DOCS_API = Path(__file__).resolve().parents[1] / "docs" / "API.md"


class TestApiSurfaceDrift:
    def test_every_public_symbol_is_documented(self):
        """docs/API.md must mention every name in ``repro.__all__``."""
        text = DOCS_API.read_text(encoding="utf-8")
        missing = [name for name in repro.__all__ if name not in text]
        assert not missing, (
            f"symbols exported from repro but absent from docs/API.md: "
            f"{missing}"
        )

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_all_is_sorted_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)


@pytest.fixture
def spd_system(small_config, rng):
    base = random_sparse_array(rng, 48, 48, 0.1)
    dense = base @ base.T + 48 * np.eye(48)
    matrix = build_at_matrix(COOMatrix.from_dense(dense), small_config)
    rhs = rng.random(48)
    return matrix, rhs


class TestSessionSolveFacade:
    @pytest.mark.parametrize(
        "method,direct",
        [
            ("cg", conjugate_gradient),
            ("conjugate_gradient", conjugate_gradient),
            ("jacobi", jacobi),
            ("richardson", richardson),
        ],
    )
    def test_solve_matches_direct_solver_bitwise(
        self, small_config, spd_system, method, direct
    ):
        matrix, rhs = spd_system
        kwargs = {"omega": 0.01} if method == "richardson" else {}
        via_facade = Session(config=small_config).solve(
            matrix, rhs, method=method, max_iterations=40, **kwargs
        )
        via_direct = direct(
            matrix, rhs,
            session=Session(config=small_config),
            max_iterations=40, **kwargs,
        )
        assert np.array_equal(via_facade.solution, via_direct.solution)
        assert via_facade.iterations == via_direct.iterations
        assert via_facade.residual_norm == via_direct.residual_norm

    def test_unknown_method_is_config_error(self, small_config, spd_system):
        matrix, rhs = spd_system
        with pytest.raises(ConfigError, match="unknown solve method"):
            Session(config=small_config).solve(matrix, rhs, method="gauss")

    def test_legacy_solver_methods_delegate(self, small_config, spd_system):
        matrix, rhs = spd_system
        session = Session(config=small_config)
        legacy = session.conjugate_gradient(matrix, rhs, max_iterations=40)
        modern = Session(config=small_config).solve(
            matrix, rhs, method="cg", max_iterations=40
        )
        assert np.array_equal(legacy.solution, modern.solution)


class TestCacheStats:
    def test_typed_stats_with_mapping_compat(self, small_config, rng):
        session = Session(config=small_config)
        a = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 32, 32, 0.2)),
            small_config,
        )
        session.multiply(a, a)
        session.multiply(a, a)
        stats = session.cache_stats()
        assert isinstance(stats, CacheStats)
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.hit_rate == 0.5
        assert stats.lookups == 2
        # dict-style access keeps old call sites working
        assert stats["hits"] == stats.hits
        assert stats.as_dict()["entries"] == stats.entries
        with pytest.raises(KeyError):
            stats["no_such_field"]

    def test_clear_cache(self, small_config, rng):
        session = Session(config=small_config)
        a = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 32, 32, 0.2)),
            small_config,
        )
        session.multiply(a, a)
        assert session.cache_stats().entries == 1
        session.clear_cache()
        assert session.cache_stats().entries == 0


class TestSessionContextManager:
    def test_exit_exports_metrics_and_trace(self, small_config, rng, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        a = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 32, 32, 0.2)),
            small_config,
        )
        with Session(
            config=small_config,
            metrics_out=str(metrics_path),
            trace_out=str(trace_path),
        ) as session:
            session.multiply(a, a)
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert payload  # at least one metric landed
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert trace["traceEvents"]
        # a closed session still answers cache queries
        assert session.cache_stats().entries >= 1

    def test_close_is_idempotent(self, small_config):
        session = Session(config=small_config)
        session.close()
        session.close()

    def test_plain_context_manager_needs_no_paths(self, small_config, rng):
        raw = random_sparse_array(rng, 16, 16, 0.4)
        a = build_at_matrix(COOMatrix.from_dense(raw), small_config)
        with Session(config=small_config) as session:
            result, report = session.multiply(a, a)
        assert report.pairs_executed > 0
        np.testing.assert_allclose(result.to_dense(), raw @ raw, atol=1e-9)
