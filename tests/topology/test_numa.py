"""Tests for NUMA placement policies."""


from repro import COOMatrix, SystemTopology, build_at_matrix, distribute_tile_rows
from repro.topology.numa import first_touch_node, placement_histogram

from ..conftest import heterogeneous_array


def build(rng, config, rows=96, cols=96):
    array = heterogeneous_array(rng, rows, cols)
    return build_at_matrix(COOMatrix.from_dense(array), config)


class TestDistribution:
    def test_round_robin_by_tile_row(self, rng, small_config):
        at = build(rng, small_config)
        topo = SystemTopology(sockets=2, cores_per_socket=2)
        distribute_tile_rows(at, topo)
        cuts = at.row_cuts()
        strip_of = {r0: i for i, r0 in enumerate(cuts[:-1])}
        for tile in at.tiles:
            expected = strip_of[tile.row0] % topo.memory_nodes
            assert tile.numa_node == expected

    def test_single_socket_all_node_zero(self, rng, small_config):
        at = build(rng, small_config)
        distribute_tile_rows(at, SystemTopology())
        assert all(tile.numa_node == 0 for tile in at.tiles)

    def test_nodes_used_roughly_evenly(self, rng, small_config):
        at = build(rng, small_config, 128, 128)
        topo = SystemTopology(sockets=4, cores_per_socket=1)
        distribute_tile_rows(at, topo)
        nodes = {tile.numa_node for tile in at.tiles}
        assert len(nodes) > 1  # more than one node actually used

    def test_returns_matrix_for_chaining(self, rng, small_config):
        at = build(rng, small_config)
        assert distribute_tile_rows(at, SystemTopology()) is at


class TestFirstTouch:
    def test_result_inherits_team_node(self):
        assert first_touch_node(3) == 3


class TestHistogram:
    def test_bytes_accounted(self, rng, small_config):
        at = build(rng, small_config)
        topo = SystemTopology(sockets=2, cores_per_socket=1)
        distribute_tile_rows(at, topo)
        hist = placement_histogram(at, topo)
        assert sum(hist.values()) == at.memory_bytes()
        assert set(hist) == {0, 1}
