"""Tests for the simulated worker-team scheduler."""

import pytest

from repro import SystemTopology, WorkerTeamScheduler
from repro.errors import SchedulerError
from repro.topology.trace import TaskRecord


def task(ti, tj, node, seconds, bytes_by_node=None):
    return TaskRecord(
        pair=(ti, tj),
        team_node=node,
        seconds=seconds,
        bytes_by_node=bytes_by_node or {},
    )


TOPO2 = SystemTopology(sockets=2, cores_per_socket=4, memory_bandwidth_bytes_per_s=1e9)


class TestTaskRecord:
    def test_remote_bytes(self):
        record = task(0, 0, 0, 1.0, {0: 100, 1: 50})
        assert record.total_bytes == 150
        assert record.remote_bytes(0) == 50
        assert record.remote_bytes(1) == 100


class TestScheduling:
    def test_empty_tasks(self):
        result = WorkerTeamScheduler(TOPO2).run([])
        assert result.makespan_seconds == 0.0
        assert result.parallel_efficiency == 1.0

    def test_pairs_stay_on_one_team(self):
        tasks = [task(0, 0, 0, 1.0), task(0, 0, 0, 1.0)]
        result = WorkerTeamScheduler(TOPO2).run(tasks)
        # Both tasks run on team 0: team 1 idle.
        assert result.team_busy_seconds[1] == 0.0
        assert result.team_busy_seconds[0] > 0.0

    def test_different_pairs_parallelize(self):
        tasks = [task(0, 0, 0, 1.0), task(1, 1, 1, 1.0)]
        result = WorkerTeamScheduler(TOPO2).run(tasks)
        assert result.team_busy_seconds[0] > 0
        assert result.team_busy_seconds[1] > 0
        serial = sum(result.team_busy_seconds)
        assert result.makespan_seconds < serial

    def test_intra_team_speedup_applied(self):
        tasks = [task(0, 0, 0, 4.0)]
        fast = WorkerTeamScheduler(TOPO2, intra_team_efficiency=1.0).run(tasks)
        slow = WorkerTeamScheduler(TOPO2, intra_team_efficiency=0.25).run(tasks)
        assert fast.makespan_seconds < slow.makespan_seconds

    def test_remote_bytes_penalized(self):
        local = [task(0, 0, 0, 1.0, {0: 10**9})]
        remote = [task(0, 0, 0, 1.0, {1: 10**9})]
        sched = WorkerTeamScheduler(TOPO2)
        assert (
            sched.run(remote).makespan_seconds > sched.run(local).makespan_seconds
        )
        assert sched.run(remote).remote_fraction == 1.0
        assert sched.run(local).remote_fraction == 0.0

    def test_pinning_vs_random_placement(self):
        # All data on node 0; pinned execution stays local.
        tasks = [task(i, 0, 0, 1.0, {0: 10**9}) for i in range(8)]
        pinned = WorkerTeamScheduler(TOPO2, honor_pinning=True).run(tasks)
        unpinned = WorkerTeamScheduler(TOPO2, honor_pinning=False).run(tasks)
        assert pinned.remote_bytes == 0
        assert unpinned.remote_bytes > 0

    def test_work_stealing_balances_load(self):
        # Every pair prefers team 0: stealing should offload some to team 1.
        tasks = [task(i, 0, 0, 1.0) for i in range(8)]
        no_steal = WorkerTeamScheduler(TOPO2, work_stealing=False).run(tasks)
        steal = WorkerTeamScheduler(TOPO2, work_stealing=True).run(tasks)
        assert steal.makespan_seconds <= no_steal.makespan_seconds
        assert steal.parallel_efficiency > no_steal.parallel_efficiency

    def test_conflicting_pair_nodes_rejected(self):
        tasks = [task(0, 0, 0, 1.0), task(0, 0, 1, 1.0)]
        with pytest.raises(SchedulerError):
            WorkerTeamScheduler(TOPO2).run(tasks)

    def test_cache_pollution_penalizes_oversized_read_sets(self):
        small_set = [task(0, 0, 0, 1.0, {0: 1000})]
        big_set = [task(0, 0, 0, 1.0, {0: TOPO2.llc_bytes * 10})]
        plain = WorkerTeamScheduler(TOPO2, model_cache_pollution=False)
        polluting = WorkerTeamScheduler(TOPO2, model_cache_pollution=True)
        # Without the model, working-set size is invisible.
        assert plain.run(big_set).makespan_seconds == pytest.approx(
            plain.run(small_set).makespan_seconds
        )
        # With it, the oversized read set pays bandwidth time.
        assert (
            polluting.run(big_set).makespan_seconds
            > polluting.run(small_set).makespan_seconds
        )

    def test_more_sockets_shorter_makespan(self):
        tasks = [task(i, 0, i % 4, 1.0) for i in range(16)]
        two = WorkerTeamScheduler(
            SystemTopology(sockets=2, cores_per_socket=4)
        ).run(tasks)
        four = WorkerTeamScheduler(
            SystemTopology(sockets=4, cores_per_socket=4)
        ).run(tasks)
        assert four.makespan_seconds < two.makespan_seconds
