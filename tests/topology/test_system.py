"""Tests for the simulated system topology."""

import pytest

from repro import SystemTopology
from repro.errors import ConfigError


class TestSystemTopology:
    def test_defaults(self):
        topo = SystemTopology()
        assert topo.sockets == 1
        assert topo.total_threads == 1
        assert topo.memory_nodes == 1

    def test_paper_machine(self):
        topo = SystemTopology.paper_machine()
        assert topo.sockets == 4
        assert topo.cores_per_socket == 10
        # 80 hardware threads via hyperthreading (paper section IV-A).
        assert topo.total_threads == 80
        assert topo.llc_bytes == 24 * 1024 * 1024

    def test_paper_machine_config_derives_paper_tile_sizes(self):
        """On the 24 MiB LLC the paper derives tau_d_max = b_atomic = 1024."""
        config = SystemTopology.paper_machine().system_config()
        assert config.max_dense_tile_dim() == 1024
        assert config.b_atomic == 1024
        assert config.k_atomic == 10

    def test_scaled_default(self):
        topo = SystemTopology.scaled_default()
        config = topo.system_config()
        assert config.b_atomic == 128

    def test_config_overrides(self):
        topo = SystemTopology.scaled_default()
        config = topo.system_config(alpha=4)
        assert config.alpha == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sockets": 0},
            {"cores_per_socket": 0},
            {"llc_bytes": 0},
            {"remote_access_penalty": -0.1},
            {"memory_bandwidth_bytes_per_s": 0},
            {"smt": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            SystemTopology(**kwargs)
