"""Tests for host topology autodetection (against a fake sysfs tree)."""

from pathlib import Path

from repro.topology.detect import detect_topology


def make_cpu(root: Path, cpu: int, package: int, core: int, llc_kib: int | None):
    base = root / f"cpu{cpu}"
    (base / "topology").mkdir(parents=True)
    (base / "topology" / "physical_package_id").write_text(f"{package}\n")
    (base / "topology" / "core_id").write_text(f"{core}\n")
    if llc_kib is not None:
        cache = base / "cache" / "index3"
        cache.mkdir(parents=True)
        (cache / "level").write_text("3\n")
        (cache / "size").write_text(f"{llc_kib}K\n")


class TestDetection:
    def test_two_socket_machine(self, tmp_path):
        # 2 sockets x 2 cores x 2 threads, 24 MiB LLC.
        cpu = 0
        for package in (0, 1):
            for core in (0, 1):
                for _ in range(2):
                    make_cpu(tmp_path, cpu, package, core, 24576 if cpu == 0 else None)
                    cpu += 1
        topo = detect_topology(tmp_path)
        assert topo.sockets == 2
        assert topo.cores_per_socket == 2
        assert topo.smt == 2
        assert topo.llc_bytes == 24576 * 1024
        assert topo.total_threads == 8

    def test_single_core(self, tmp_path):
        make_cpu(tmp_path, 0, 0, 0, 512)
        topo = detect_topology(tmp_path)
        assert topo.sockets == 1
        assert topo.cores_per_socket == 1
        assert topo.llc_bytes == 512 * 1024

    def test_missing_sysfs_falls_back(self, tmp_path):
        topo = detect_topology(tmp_path / "nonexistent")
        assert topo.sockets == 1
        assert topo.cores_per_socket >= 1

    def test_megabyte_cache_size(self, tmp_path):
        base = tmp_path / "cpu0"
        (base / "topology").mkdir(parents=True)
        cache = base / "cache" / "index2"
        cache.mkdir(parents=True)
        (cache / "level").write_text("2")
        (cache / "size").write_text("4M")
        topo = detect_topology(tmp_path)
        assert topo.llc_bytes == 4 * 1024 * 1024

    def test_malformed_entries_ignored(self, tmp_path):
        base = tmp_path / "cpu0"
        (base / "topology").mkdir(parents=True)
        (base / "topology" / "physical_package_id").write_text("garbage")
        cache = base / "cache" / "index0"
        cache.mkdir(parents=True)
        (cache / "level").write_text("not-a-number")
        (cache / "size").write_text("???")
        topo = detect_topology(tmp_path)
        assert topo.sockets == 1

    def test_real_host_probes_cleanly(self):
        topo = detect_topology()
        assert topo.sockets >= 1
        assert topo.total_threads >= 1
        config = topo.system_config()
        assert config.b_atomic >= 2
