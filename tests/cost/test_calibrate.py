"""Tests for the cost-model calibration micro-benchmarks."""

import pytest

from repro.cost import CostModel, calibrate
from repro.cost.calibrate import describe


class TestCalibration:
    @pytest.fixture(scope="class")
    def coefficients(self):
        # Small size keeps the calibration run fast in CI.
        return calibrate(size=64, density=0.08, repeats=1)

    def test_all_coefficients_positive(self, coefficients):
        for name, value in vars(coefficients).items():
            assert value > 0, name

    def test_dense_flops_cheapest_per_unit(self, coefficients):
        """BLAS flops must be cheaper per scalar than sparse expansion."""
        assert coefficients.dense_flop < coefficients.sparse_expand

    def test_calibrated_model_usable(self, coefficients):
        model = CostModel(coefficients)
        turnaround = model.solve_write_turnaround(64, 64, 64, 0.05, 0.05)
        assert 0.0 < turnaround <= 1.0

    def test_describe_lists_every_coefficient(self, coefficients):
        text = describe(coefficients)
        for name in vars(coefficients):
            assert name in text

    def test_deterministic_workload(self):
        # Same seed -> same matrices; timings differ but must stay sane.
        a = calibrate(size=32, repeats=1)
        assert a.dense_flop < 1.0
