"""Tests for the eightfold multiplication cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import CostCoefficients, CostModel
from repro.errors import ConfigError
from repro.kinds import StorageKind

SP = StorageKind.SPARSE
DE = StorageKind.DENSE


@pytest.fixture
def model() -> CostModel:
    return CostModel()


class TestCoefficients:
    def test_defaults_positive(self):
        coeffs = CostCoefficients()
        assert all(v >= 0 for v in vars(coeffs).values())

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CostCoefficients(dense_flop=-1.0)


class TestProductCost:
    def test_positive_for_all_kernels(self, model):
        for a in StorageKind:
            for b in StorageKind:
                for c in StorageKind:
                    cost = model.product_cost(a, b, c, 64, 64, 64, 0.1, 0.1, 0.3)
                    assert cost > 0

    def test_sparse_cheaper_when_hypersparse(self, model):
        args = (512, 512, 512, 1e-4, 1e-4, 1e-3)
        sparse = model.product_cost(SP, SP, SP, *args)
        dense = model.product_cost(DE, DE, DE, *args)
        assert sparse < dense

    def test_dense_cheaper_when_full(self, model):
        args = (128, 128, 128, 0.9, 0.9, 1.0)
        sparse = model.product_cost(SP, SP, SP, *args)
        dense = model.product_cost(DE, DE, DE, *args)
        assert dense < sparse

    def test_dense_target_cheaper_for_dense_result(self, model):
        """The read/write asymmetry: sparse writes are expensive."""
        args = (128, 128, 128, 0.05, 0.05, 0.8)
        to_sparse = model.product_cost(SP, SP, SP, *args)
        to_dense = model.product_cost(SP, SP, DE, *args)
        assert to_dense < to_sparse

    def test_cost_monotone_in_density(self, model):
        costs = [
            model.product_cost(SP, SP, SP, 64, 64, 64, rho, 0.1, 0.2)
            for rho in (0.01, 0.1, 0.5)
        ]
        assert costs == sorted(costs)


class TestConversionCost:
    def test_same_kind_free(self, model):
        assert model.conversion_cost(SP, SP, 100, 100, 0.1) == 0.0
        assert model.conversion_cost(DE, DE, 100, 100, 0.1) == 0.0

    def test_conversions_positive(self, model):
        assert model.conversion_cost(SP, DE, 100, 100, 0.1) > 0
        assert model.conversion_cost(DE, SP, 100, 100, 0.1) > 0

    def test_scales_with_size(self, model):
        small = model.conversion_cost(SP, DE, 10, 10, 0.1)
        large = model.conversion_cost(SP, DE, 1000, 1000, 0.1)
        assert large > small


class TestThresholds:
    def test_defaults(self, model):
        assert model.read_threshold == 0.25
        assert model.write_threshold < model.read_threshold

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(read_threshold=0.0)
        with pytest.raises(ConfigError):
            CostModel(write_threshold=1.5)

    def test_write_turnaround_below_read_turnaround(self, model):
        """The paper: rho0_W 'has usually a much lower value' than rho0_R."""
        write = model.solve_write_turnaround(128, 128, 128, 0.05, 0.05)
        read = model.solve_read_turnaround(128, 128, 128, 0.05, 0.3)
        assert write < read

    def test_write_turnaround_in_unit_interval(self, model):
        value = model.solve_write_turnaround(128, 128, 128, 0.02, 0.02)
        assert 0.0 < value <= 1.0


class TestCheapestKinds:
    def test_respects_convertibility(self, model):
        ka, kb, _ = model.cheapest_input_kinds(
            SP, SP, DE, 64, 64, 64, 0.9, 0.9, 1.0,
            convertible_a=False, convertible_b=False,
        )
        assert (ka, kb) == (SP, SP)

    def test_prefers_dense_for_dense_data(self, model):
        ka, kb, _ = model.cheapest_input_kinds(SP, SP, DE, 128, 128, 128, 0.95, 0.95, 1.0)
        assert ka is DE and kb is DE

    def test_prefers_sparse_for_hypersparse_data(self, model):
        ka, kb, _ = model.cheapest_input_kinds(
            DE, DE, SP, 1024, 1024, 1024, 1e-4, 1e-4, 1e-3
        )
        assert ka is SP and kb is SP

    def test_cost_includes_conversion(self, model):
        __, __, with_conv = model.cheapest_input_kinds(
            SP, SP, DE, 64, 64, 64, 0.9, 0.9, 1.0
        )
        __, __, without = model.cheapest_input_kinds(
            DE, DE, DE, 64, 64, 64, 0.9, 0.9, 1.0
        )
        assert with_conv >= without


class TestCostModelProperties:
    @given(
        st.sampled_from(list(StorageKind)),
        st.sampled_from(list(StorageKind)),
        st.sampled_from(list(StorageKind)),
        st.integers(1, 512),
        st.integers(1, 512),
        st.integers(1, 512),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_cost_finite_nonnegative(self, a, b, c, m, k, n, ra, rb, rc):
        model = CostModel()
        cost = model.product_cost(a, b, c, m, k, n, ra, rb, rc)
        assert cost >= 0.0
        assert cost < float("inf")

    @given(st.integers(1, 256), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_cheapest_never_worse_than_status_quo(self, size, rho):
        model = CostModel()
        status_quo = model.product_cost(SP, SP, SP, size, size, size, rho, rho, rho)
        __, __, best = model.cheapest_input_kinds(
            SP, SP, SP, size, size, size, rho, rho, rho
        )
        assert best <= status_quo + 1e-15
