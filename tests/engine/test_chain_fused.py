"""Fused chain plans: parity, caching, scheduling and solver pinning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    COOMatrix,
    DenseMatrix,
    FusedChainPlan,
    MultiplyOptions,
    Session,
    SystemConfig,
    build_at_matrix,
    build_chain_plan,
    multiply_chain,
    plan_chain,
)
from repro.core.chain import ChainReport
from repro.engine.cache import ChainKey
from repro.engine.executor import execute_fused_chain
from repro.errors import PlanMismatchError, ShapeError

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
OPTIONS = MultiplyOptions(config=CONFIG)


def build(array: np.ndarray):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


def sparse_chain(rng: np.random.Generator, dims: list[int], density: float = 0.15):
    """AT Matrix operands for a random all-sparse chain over ``dims``."""
    return [
        build(
            np.where(
                rng.random((rows, cols)) < density,
                rng.random((rows, cols)),
                0.0,
            )
        )
        for rows, cols in zip(dims, dims[1:], strict=False)
    ]


def dense_reference(operands) -> np.ndarray:
    result = operands[0].to_dense()
    for operand in operands[1:]:
        result = result @ operand.to_dense()
    return result


class TestFusedParity:
    """Fused execution must be bit-identical to per-hop multiply_chain."""

    @pytest.mark.parametrize("dims", [[48, 32, 40], [64, 48, 80, 32, 40]])
    def test_all_sparse_chain_parity(self, rng, dims):
        operands = sparse_chain(rng, dims)
        baseline, baseline_report = multiply_chain(list(operands), options=OPTIONS)
        assert not baseline_report.fused  # no cache: legacy per-hop loop

        session = Session(config=CONFIG)
        cold, cold_report = session.multiply_chain(list(operands))
        warm, warm_report = session.multiply_chain(list(operands))
        assert not cold_report.plan_cache_hit
        assert warm_report.fused and warm_report.plan_cache_hit
        assert baseline_report.order == cold_report.order == warm_report.order
        assert np.array_equal(baseline.to_dense(), cold.to_dense())
        assert np.array_equal(baseline.to_dense(), warm.to_dense())
        np.testing.assert_allclose(
            warm.to_dense(), dense_reference(operands), atol=1e-10
        )

    def test_mixed_dense_sparse_chain_parity(self, rng):
        sparse_a, sparse_b = sparse_chain(rng, [48, 64, 32])
        dense_c = DenseMatrix(rng.random((32, 24)))
        operands = [sparse_a, sparse_b, dense_c]
        baseline, _ = multiply_chain(list(operands), options=OPTIONS)

        session = Session(config=CONFIG)
        cold, _ = session.multiply_chain(list(operands))
        warm, warm_report = session.multiply_chain(list(operands))
        assert warm_report.fused and warm_report.plan_cache_hit
        assert np.array_equal(baseline.to_dense(), cold.to_dense())
        assert np.array_equal(baseline.to_dense(), warm.to_dense())

    def test_random_chains_parity(self, rng):
        for _ in range(5):
            length = int(rng.integers(2, 5))
            dims = [int(d) for d in rng.integers(2, 6, size=length + 1) * 16]
            operands = sparse_chain(rng, dims, density=0.2)
            baseline, _ = multiply_chain(list(operands), options=OPTIONS)
            session = Session(config=CONFIG)
            session.multiply_chain(list(operands))
            warm, warm_report = session.multiply_chain(list(operands))
            assert warm_report.plan_cache_hit
            assert np.array_equal(baseline.to_dense(), warm.to_dense())


class TestChainCache:
    def test_repeated_chain_run_is_a_single_cache_hit(self, rng):
        operands = sparse_chain(rng, [64, 48, 80, 40])
        session = Session(config=CONFIG)
        session.multiply_chain(list(operands))
        before = session.cache_stats()
        assert before.hits == 0  # cold run only misses and records

        _, report = session.multiply_chain(list(operands))
        after = session.cache_stats()
        assert report.plan_cache_hit
        assert after.hits == before.hits + 1  # ONE hit for the whole chain
        assert after.misses == before.misses  # and no new misses

    def test_fused_plan_reports_eager_frees(self, rng):
        operands = sparse_chain(rng, [64, 48, 80, 32, 40])
        session = Session(config=CONFIG)
        session.multiply_chain(list(operands))
        _, report = session.multiply_chain(list(operands))
        assert report.fused
        # A 4-hop chain has 3 intermediates; every one dies before the end.
        assert report.intermediates_freed > 0
        assert report.peak_intermediate_bytes > 0

    def test_value_change_same_topology_replays(self, rng):
        operands = sparse_chain(rng, [48, 32, 40])
        session = Session(config=CONFIG)
        session.multiply_chain(list(operands))

        # Same sparsity pattern, different values: same ChainKey, and the
        # intermediates keep their topology, so the fused replay applies.
        rescaled = [
            build(operand.to_dense() * 2.0) for operand in operands
        ]
        result, report = session.multiply_chain(rescaled)
        assert report.plan_cache_hit
        np.testing.assert_allclose(
            result.to_dense(), dense_reference(rescaled), atol=1e-10
        )

    def test_ineligible_options_fall_back_to_legacy_loop(self, rng):
        operands = sparse_chain(rng, [48, 32, 40])
        # A memory limit disqualifies fusion (enforcement is per-hop).
        opts = MultiplyOptions(config=CONFIG, memory_limit_bytes=float("inf"))
        result, report = multiply_chain(list(operands), options=opts)
        assert isinstance(report, ChainReport)
        assert not report.fused and not report.plan_cache_hit
        np.testing.assert_allclose(
            result.to_dense(), dense_reference(operands), atol=1e-10
        )


class TestBuildChainPlan:
    def test_build_chain_plan_surface(self, rng):
        operands = sparse_chain(rng, [64, 48, 80, 40, 32])
        fused = build_chain_plan(list(operands), options=OPTIONS)
        assert isinstance(fused, FusedChainPlan)
        assert fused.num_hops == 3
        assert len(fused.schedule) == fused.num_pairs
        assert len(fused.frees) == len(fused.schedule)
        description = fused.describe()
        assert description["hops"] == 3
        assert description["parenthesization"].count("(") == 3
        assert fused.memory_bytes() > 0
        assert fused.fingerprint  # stable identity string

    def test_schedule_interleaves_across_hops(self, rng):
        operands = sparse_chain(rng, [64, 48, 80, 40], density=0.3)
        fused = build_chain_plan(list(operands), options=OPTIONS)
        hops_in_order = [hop_index for hop_index, _ in fused.schedule]
        # Downstream hops start before upstream hops finish: the schedule
        # is NOT sorted by hop (that would be barrier-per-hop execution).
        assert hops_in_order != sorted(hops_in_order)

    def test_executes_against_cache_key_checked_leaves(self, rng):
        operands = sparse_chain(rng, [48, 32, 40])
        fused = build_chain_plan(list(operands), options=OPTIONS)
        result, outcome = execute_fused_chain(
            fused, operands, config=CONFIG, cost_model=OPTIONS.resolved_cost_model()
        )
        np.testing.assert_allclose(
            result.to_dense(), dense_reference(operands), atol=1e-10
        )
        assert len(outcome.steps) == fused.num_hops

    def test_mismatched_leaves_rejected(self, rng):
        operands = sparse_chain(rng, [48, 32, 40])
        fused = build_chain_plan(list(operands), options=OPTIONS)
        other = sparse_chain(rng, [48, 32, 40])
        with pytest.raises(PlanMismatchError):
            execute_fused_chain(
                fused,
                other,
                config=CONFIG,
                cost_model=OPTIONS.resolved_cost_model(),
            )

    def test_single_operand_rejected(self, rng):
        (operand,) = sparse_chain(rng, [48, 32])[:1]
        with pytest.raises(ShapeError):
            build_chain_plan([operand], options=OPTIONS)

    def test_chain_key_identity(self, rng):
        operands = sparse_chain(rng, [48, 32, 40, 24])
        session = Session(config=CONFIG)
        session.multiply_chain(list(operands))
        keys = [
            key
            for key in session.plan_cache._plans
            if isinstance(key, ChainKey)
        ]
        assert len(keys) == 1
        assert len(keys[0].operand_fingerprints) == 3


class TestPlanChainFixes:
    def test_empty_chain_message_is_typed(self):
        with pytest.raises(ShapeError, match="empty matrix chain"):
            plan_chain([])

    def test_dimension_mismatch_names_position(self, rng):
        good, _ = sparse_chain(rng, [48, 32, 40])
        bad = build(rng.random((16, 24)))
        with pytest.raises(ShapeError, match="at operand 0"):
            plan_chain([good, bad], config=CONFIG)

    def test_structural_plan_matches_default_for_sparse(self, rng):
        operands = sparse_chain(rng, [64, 48, 80, 40])
        default = plan_chain(list(operands), config=CONFIG)
        structural = plan_chain(list(operands), config=CONFIG, structural=True)
        # CSR patterns are fingerprinted exactly: both views agree.
        assert default.order == structural.order


class TestDeprecations:
    def test_multiply_chain_context_params_warn(self, rng):
        operands = sparse_chain(rng, [48, 32])
        with pytest.warns(DeprecationWarning, match="config"):
            multiply_chain(list(operands), config=CONFIG)

    def test_evaluate_context_params_warn(self, rng):
        from repro.expr import M

        operand = sparse_chain(rng, [48, 32])[0]
        with pytest.warns(DeprecationWarning, match="config"):
            (2.0 * M(operand)).evaluate(config=CONFIG)

    def test_session_front_door_does_not_warn(self, rng):
        import warnings

        operands = sparse_chain(rng, [48, 32, 40])
        session = Session(config=CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.multiply_chain(list(operands))


class TestSolverPinning:
    def test_cg_reuses_one_pinned_fused_plan(self, rng):
        n = 64
        mask = rng.random((n, n)) < 0.05
        base = np.where(mask, rng.uniform(0.1, 1.0, size=(n, n)), 0.0)
        spd = (base + base.T) / 2.0
        np.fill_diagonal(spd, spd.sum(axis=1) + 1.0)
        matrix = build(spd)
        rhs = rng.random(n)

        session = Session(config=CONFIG)
        outcome = session.conjugate_gradient(matrix, rhs, tolerance=1e-10)
        assert outcome.converged and outcome.iterations >= 3
        stats = session.cache_stats()
        assert stats.hit_rate > 0
        assert stats.hits == 1  # the pin: probes stop after one hit
        assert stats.hits < outcome.iterations

        from repro.solve import conjugate_gradient

        unpinned = conjugate_gradient(
            matrix,
            rhs,
            tolerance=1e-10,
            options=MultiplyOptions(config=CONFIG),
        )
        assert np.array_equal(outcome.solution, unpinned.solution)
