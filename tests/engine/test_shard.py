"""Tests for the worker-side shard protocol (no processes involved).

Everything here runs in-process: ``worker_main`` is driven by a stub
:class:`TaskSource`, so the serialization round-trip, the done-file
protocol, the journal-before-done ordering and the fault-spec plumbing
are all exercised without ``multiprocessing``.
"""

import json
import pickle

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, build_at_matrix
from repro.cost.model import CostModel
from repro.engine import build_plan
from repro.engine.shard import (
    ShardConfig,
    assign_shards,
    done_file,
    heartbeat_file,
    load_run_dir,
    prepare_run_dir,
    worker_main,
)
from repro.engine.shard import _failure_snapshot, _outcome_delta
from repro.errors import IntegrityError
from repro.resilience import FaultPlanSpec, RetryPolicy
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.report import FailureReport, PairOutcome

from ..conftest import heterogeneous_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


@pytest.fixture
def planned(rng):
    at = build(heterogeneous_array(rng, 64, 64))
    plan = build_plan(at, at, config=CONFIG, cost_model=CostModel())
    return at, plan


class TestAssignShards:
    def test_pairs_follow_their_team_node(self, planned):
        _, plan = planned
        shards = assign_shards(plan.pairs, 2)
        assert len(shards) == 2
        placed = {coords for shard in shards for coords in shard}
        assert placed == {(p.ti, p.tj) for p in plan.pairs}
        for pair in plan.pairs:
            assert (pair.ti, pair.tj) in shards[pair.team_node % 2]

    def test_single_worker_gets_everything_in_plan_order(self, planned):
        _, plan = planned
        shards = assign_shards(plan.pairs, 1)
        assert shards == [[(p.ti, p.tj) for p in plan.pairs]]

    def test_assignment_is_deterministic(self, planned):
        _, plan = planned
        assert assign_shards(plan.pairs, 3) == assign_shards(plan.pairs, 3)

    def test_more_workers_than_pairs_leaves_empty_shards(self, planned):
        _, plan = planned
        shards = assign_shards(plan.pairs, len(plan.pairs) + 5)
        assert sum(len(shard) for shard in shards) == len(plan.pairs)

    def test_zero_workers_rejected(self, planned):
        _, plan = planned
        with pytest.raises(ValueError, match="workers must be >= 1"):
            assign_shards(plan.pairs, 0)


class TestRunDirRoundTrip:
    def shard_config(self, tmp_path, **overrides):
        defaults = dict(
            config=CONFIG,
            cost_model=CostModel(),
            resilience=None,
            heartbeat_interval=0.25,
            journal_dir=str(tmp_path / "journal"),
            b_is_a=True,
        )
        defaults.update(overrides)
        return ShardConfig(**defaults)

    def test_round_trip_preserves_plan_and_operands(self, tmp_path, planned):
        at, plan = planned
        prepare_run_dir(tmp_path, plan, at, at, self.shard_config(tmp_path))
        loaded_plan, at_a, at_b, shard_config = load_run_dir(tmp_path)
        assert loaded_plan.fingerprint == plan.fingerprint
        assert at_b is at_a  # b_is_a ships one archive and aliases it
        np.testing.assert_array_equal(at_a.to_dense(), at.to_dense())
        assert shard_config.config == CONFIG

    def test_distinct_operands_ship_two_archives(self, tmp_path, rng):
        at_a = build(heterogeneous_array(rng, 64, 48))
        at_b = build(heterogeneous_array(rng, 48, 64))
        plan = build_plan(at_a, at_b, config=CONFIG, cost_model=CostModel())
        prepare_run_dir(
            tmp_path, plan, at_a, at_b, self.shard_config(tmp_path, b_is_a=False)
        )
        _, loaded_a, loaded_b, _ = load_run_dir(tmp_path)
        assert loaded_b is not loaded_a
        np.testing.assert_array_equal(loaded_b.to_dense(), at_b.to_dense())

    def test_shard_config_pickles_with_fault_spec(self, tmp_path):
        spec = FaultPlanSpec(
            seed=7,
            kernel_error_rate=0.1,
            worker_crash_pairs=((1, 2),),
            worker_crash_attempts=2,
        )
        config = self.shard_config(
            tmp_path, resilience=RetryPolicy(max_attempts=2), fault_spec=spec
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.fault_spec == spec
        assert clone.resilience.max_attempts == 2
        rebuilt = clone.fault_spec.build()
        assert rebuilt.worker_crash_pairs == ((1, 2),)


class TestFileNaming:
    def test_heartbeat_and_done_files_are_stable(self, tmp_path):
        assert heartbeat_file(tmp_path, 3).name == "hb-003.json"
        assert done_file(tmp_path, (12, 7)).name == "done-00012-00007.json"


class TestOutcomeDelta:
    def test_without_policy_reports_the_one_attempt(self):
        failure = FailureReport()
        before = _failure_snapshot(failure)
        delta = _outcome_delta(failure, before, (0, 0))
        assert delta["attempts"] == 1
        assert delta["failed"] is False
        assert delta["error"] is None

    def test_with_policy_reports_the_accrued_counters(self):
        failure = FailureReport()
        before = _failure_snapshot(failure)
        failure.merge_outcome(
            PairOutcome(pair=(1, 1), attempts=3, retries=2, late=True)
        )
        delta = _outcome_delta(failure, before, (1, 1))
        assert delta["attempts"] == 3
        assert delta["retries"] == 2
        assert delta["late"] is True


class _StubSource:
    """A TaskSource fed from a list (dispatch ends with the sentinel)."""

    def __init__(self, tasks):
        self._tasks = list(tasks) + [None]

    def get(self):
        return self._tasks.pop(0)


class TestWorkerMainInProcess:
    def run_worker(self, tmp_path, planned, coords_list, **config_overrides):
        at, plan = planned
        journal = tmp_path / "journal"
        shard_config = ShardConfig(
            config=CONFIG,
            cost_model=CostModel(),
            resilience=None,
            heartbeat_interval=0.05,
            journal_dir=str(journal),
            b_is_a=True,
            **config_overrides,
        )
        prepare_run_dir(tmp_path, plan, at, at, shard_config)
        supervisor_store = CheckpointStore(journal)
        supervisor_store.begin(plan)
        tasks = [(coords, 1) for coords in coords_list]
        worker_main(0, str(tmp_path), _StubSource(tasks))
        return plan, supervisor_store

    def test_done_files_and_journal_records_appear(self, tmp_path, planned):
        _, plan = planned
        coords = [(p.ti, p.tj) for p in plan.pairs[:3]]
        plan, store = self.run_worker(tmp_path, planned, coords)
        for pair_coords in coords:
            payload = json.loads(
                done_file(tmp_path, pair_coords).read_text(encoding="utf-8")
            )
            assert payload["failed"] is False
            assert payload["worker"] == 0
            assert payload["dispatch_attempt"] == 1
            assert payload["products"] >= 1
            assert payload["outcome"]["attempts"] == 1
            # Journal-before-done: the result is durable by the time the
            # done file exists, so the supervisor can always adopt it.
            assert store.load_pair(pair_coords) is not None

    def test_heartbeat_file_appears_with_worker_pid(self, tmp_path, planned):
        _, plan = planned
        plan, _ = self.run_worker(
            tmp_path, planned, [(plan.pairs[0].ti, plan.pairs[0].tj)]
        )
        beat = json.loads(
            heartbeat_file(tmp_path, 0).read_text(encoding="utf-8")
        )
        assert beat["worker"] == 0
        assert beat["beat"] >= 1
        assert beat["pid"] > 0

    def test_unjournaled_pair_is_an_integrity_error(self, tmp_path, planned):
        _, plan = planned
        plan, store = self.run_worker(
            tmp_path, planned, [(plan.pairs[0].ti, plan.pairs[0].tj)]
        )
        with pytest.raises(IntegrityError):
            store.load_pair((99, 99))
