"""The plan/execute split: correctness, replayability, mismatch guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    COOMatrix,
    MultiplyOptions,
    PlanMismatchError,
    atmult,
    build_at_matrix,
    execute,
    plan,
)
from repro.formats import coo_to_csr

from ..conftest import as_csr, as_dense, heterogeneous_array, random_sparse_array


@pytest.fixture
def workload(rng, small_config):
    a = heterogeneous_array(rng, 90, 70, background=0.06)
    b = heterogeneous_array(rng, 70, 85, background=0.06)
    at_a = build_at_matrix(COOMatrix.from_dense(a), small_config)
    at_b = build_at_matrix(COOMatrix.from_dense(b), small_config)
    return a, b, at_a, at_b


class TestPlanStructure:
    def test_plan_captures_pairs_and_threshold(self, workload, small_config):
        _, _, at_a, at_b = workload
        execution_plan = plan(at_a, at_b, config=small_config)
        assert execution_plan.shape == (90, 85)
        assert execution_plan.pairs
        assert execution_plan.num_products >= len(execution_plan.pairs)
        assert execution_plan.write_threshold > 0
        # every planned pair carries its target geometry and kind choice
        for pair in execution_plan.pairs:
            assert 0 <= pair.r0 < pair.r1 <= 90
            assert 0 <= pair.c0 < pair.c1 <= 85

    def test_plan_is_deterministic(self, workload, small_config):
        _, _, at_a, at_b = workload
        first = plan(at_a, at_b, config=small_config)
        second = plan(at_a, at_b, config=small_config)
        assert first.a_fingerprint == second.a_fingerprint
        assert first.setup_key == second.setup_key
        assert [p.c_kind for p in first.pairs] == [p.c_kind for p in second.pairs]


class TestExecuteCorrectness:
    def test_execute_matches_atmult(self, workload, small_config):
        a, b, at_a, at_b = workload
        execution_plan = plan(at_a, at_b, config=small_config)
        planned, _ = execute(execution_plan, at_a, at_b, config=small_config)
        direct, _ = atmult(at_a, at_b, config=small_config)
        np.testing.assert_allclose(planned.to_dense(), a @ b, atol=1e-10)
        assert np.array_equal(planned.to_dense(), direct.to_dense())

    def test_execute_with_plain_operands(self, rng, small_config):
        a = random_sparse_array(rng, 64, 48, 0.15)
        b = random_sparse_array(rng, 48, 56, 0.4)
        csr_a, dense_b = as_csr(a), as_dense(b)
        execution_plan = plan(csr_a, dense_b, config=small_config)
        result, report = execute(execution_plan, csr_a, dense_b, config=small_config)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert sum(report.kernel_counts.values()) >= 1

    def test_execute_seeds_c(self, workload, rng, small_config):
        a, b, at_a, at_b = workload
        seed = random_sparse_array(rng, 90, 85, 0.1)
        execution_plan = plan(at_a, at_b, config=small_config)
        result, _ = execute(
            execution_plan, at_a, at_b, as_dense(seed), config=small_config
        )
        np.testing.assert_allclose(result.to_dense(), seed + a @ b, atol=1e-10)


class TestReplay:
    def test_replay_with_changed_values_same_pattern(self, rng, small_config):
        pattern = random_sparse_array(rng, 64, 64, 0.12)
        first = as_csr(pattern)
        # same nonzero pattern, new values
        rescaled = coo_to_csr(COOMatrix.from_dense(np.where(pattern != 0, pattern * 3.5, 0.0)))
        execution_plan = plan(first, first, config=small_config)
        result, _ = execute(execution_plan, rescaled, rescaled, config=small_config)
        dense = rescaled.to_dense()
        np.testing.assert_allclose(result.to_dense(), dense @ dense, atol=1e-10)

    def test_mismatched_topology_raises(self, rng, small_config):
        a = as_csr(random_sparse_array(rng, 64, 64, 0.12))
        other = as_csr(random_sparse_array(rng, 64, 64, 0.3))
        execution_plan = plan(a, a, config=small_config)
        with pytest.raises(PlanMismatchError):
            execute(execution_plan, other, other, config=small_config)

    def test_describe_and_histogram(self, workload, small_config):
        _, _, at_a, at_b = workload
        execution_plan = plan(at_a, at_b, config=small_config)
        text = execution_plan.describe()
        assert "pairs" in text
        histogram = execution_plan.kernel_histogram()
        assert sum(histogram.values()) == execution_plan.num_products


class TestAblationFlagsInPlan:
    def test_no_estimation_plan_is_all_sparse(self, workload, small_config):
        _, _, at_a, at_b = workload
        execution_plan = plan(
            at_a,
            at_b,
            options=MultiplyOptions(config=small_config, use_estimation=False),
        )
        assert execution_plan.use_estimation is False
        assert execution_plan.estimate is None
        assert np.isinf(execution_plan.write_threshold)
