"""Session: plan reuse across iterative workloads, solver integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    COOMatrix,
    Session,
    SystemConfig,
    build_at_matrix,
    conjugate_gradient,
    jacobi,
    observe,
    richardson,
)

from ..conftest import as_csr


def spd_system(rng: np.random.Generator, n: int) -> np.ndarray:
    """A sparse strictly-diagonally-dominant SPD matrix."""
    mask = rng.random((n, n)) < 0.05
    base = np.where(mask, rng.uniform(0.1, 1.0, size=(n, n)), 0.0)
    symmetric = (base + base.T) / 2.0
    np.fill_diagonal(symmetric, symmetric.sum(axis=1) + 1.0)
    return symmetric


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


class TestSessionBasics:
    def test_session_owns_a_cache(self, config):
        session = Session(config=config)
        assert session.plan_cache is not None
        assert session.cache_stats()["entries"] == 0

    def test_multiply_through_session_reuses_plan(self, rng, config):
        array = spd_system(rng, 64)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        session = Session(config=config)
        first, _ = session.multiply(matrix, matrix)
        second, _ = session.multiply(matrix, matrix)
        assert np.array_equal(first.to_dense(), second.to_dense())
        stats = session.cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_matvec_matches_numpy(self, rng, config):
        array = spd_system(rng, 48)
        session = Session(config=config)
        x = rng.random(48)
        product = session.matvec(as_csr(array), x)
        np.testing.assert_allclose(product, array @ x, atol=1e-10)


class TestSolverPlanReuse:
    def test_cg_pins_one_fused_matvec_plan(self, rng, config):
        array = spd_system(rng, 64)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        rhs = rng.random(64)
        session = Session(config=config)
        outcome = session.conjugate_gradient(matrix, rhs, tolerance=1e-8)
        assert outcome.converged
        assert outcome.iterations >= 2
        stats = session.cache_stats()
        # Iteration 1 records the fused matvec plan (one chain miss plus
        # one per-hop plan miss); iteration 2's single hit pins it, and
        # iterations 3..N replay the pinned plan without probing the
        # cache at all — far fewer lookups than iterations.
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats.hit_rate > 0
        assert stats["hits"] < outcome.iterations

    def test_cg_estimates_and_optimizes_exactly_once(self, rng, config):
        array = spd_system(rng, 64)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        rhs = rng.random(64)
        # how many optimize spans does ONE plan build of the matvec emit?
        with observe() as baseline_obs:
            Session(config=config).matvec(matrix, rhs)
        baseline = [
            span.name for span in baseline_obs.tracer.spans()
        ].count("optimize")
        assert baseline >= 1

        with observe() as obs:
            outcome = conjugate_gradient(
                matrix, rhs, tolerance=1e-8, session=Session(config=config)
            )
        assert outcome.converged and outcome.iterations >= 2
        names = [span.name for span in obs.tracer.spans()]
        # planning ran once, for the first matvec; iterations 2..N
        # replayed the cached plan without re-estimating/re-optimizing
        assert names.count("estimate") == 1
        assert names.count("water_level") == 1
        assert names.count("optimize") == baseline
        # ...but every iteration still executed its pair loop
        assert names.count("pair") >= outcome.iterations

    def test_cg_without_session_still_converges(self, rng, config):
        array = spd_system(rng, 64)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        rhs = rng.random(64)
        outcome = conjugate_gradient(matrix, rhs, tolerance=1e-8)
        np.testing.assert_allclose(array @ outcome.solution, rhs, atol=1e-6)

    def test_session_and_plain_cg_agree(self, rng, config):
        array = spd_system(rng, 64)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        rhs = rng.random(64)
        plain = conjugate_gradient(matrix, rhs, tolerance=1e-10)
        planned = conjugate_gradient(
            matrix, rhs, tolerance=1e-10, session=Session(config=config)
        )
        np.testing.assert_allclose(
            plain.solution, planned.solution, atol=1e-8
        )

    def test_jacobi_and_richardson_accept_sessions(self, rng, config):
        array = spd_system(rng, 48)
        matrix = build_at_matrix(COOMatrix.from_dense(array), config)
        rhs = rng.random(48)
        session = Session(config=config)
        jacobi_outcome = jacobi(matrix, rhs, session=session, tolerance=1e-8)
        assert jacobi_outcome.converged
        np.testing.assert_allclose(
            array @ jacobi_outcome.solution, rhs, atol=1e-5
        )
        richardson_outcome = richardson(
            matrix,
            rhs,
            session=session,
            omega=0.2,
            tolerance=1e-6,
            max_iterations=5000,
        )
        assert richardson_outcome.converged


class TestWrapHoisting:
    """Regression: solvers must wrap the operand once, not per iteration."""

    def test_cg_wraps_csr_operand_exactly_once(self, rng, config):
        array = spd_system(rng, 64)
        csr = as_csr(array)
        rhs = rng.random(64)
        with observe() as obs:
            outcome = conjugate_gradient(
                csr, rhs, tolerance=1e-8, session=Session(config=config)
            )
        assert outcome.converged and outcome.iterations >= 2
        # one wrap for the system matrix, regardless of iteration count
        assert obs.metrics.value("operand.wraps.sparse") == 1

    def test_plain_path_also_wraps_once(self, rng, config):
        array = spd_system(rng, 64)
        csr = as_csr(array)
        rhs = rng.random(64)
        with observe() as obs:
            outcome = conjugate_gradient(csr, rhs, tolerance=1e-8)
        assert outcome.converged and outcome.iterations >= 2
        assert obs.metrics.value("operand.wraps.sparse") == 1
