"""PlanCache correctness: keying, invalidation, LRU eviction, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    COOMatrix,
    CostModel,
    MultiplyOptions,
    PlanCache,
    atmult,
    build_at_matrix,
    observe,
)
from repro.engine.cache import PlanKey
from repro.engine.fingerprint import structure_fingerprint

from ..conftest import as_csr, random_sparse_array


@pytest.fixture
def cache() -> PlanCache:
    return PlanCache()


class TestKeying:
    def test_repeated_multiply_hits(self, rng, small_config, cache):
        array = random_sparse_array(rng, 64, 64, 0.15)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        options = MultiplyOptions(config=small_config, plan_cache=cache)
        atmult(matrix, matrix, options=options)
        atmult(matrix, matrix, options=options)
        atmult(matrix, matrix, options=options)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["entries"] == 1

    def test_structure_change_invalidates(self, rng, small_config, cache):
        array = random_sparse_array(rng, 64, 64, 0.15)
        first = as_csr(array)
        # different nonzero pattern => different structure fingerprint
        shifted = np.roll(array, 1, axis=1)
        second = as_csr(shifted)
        assert structure_fingerprint(first) != structure_fingerprint(second)
        options = MultiplyOptions(config=small_config, plan_cache=cache)
        atmult(first, first, options=options)
        atmult(second, second, options=options)
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0

    def test_value_change_same_pattern_still_hits(self, rng, small_config, cache):
        array = random_sparse_array(rng, 64, 64, 0.15)
        first = as_csr(array)
        second = as_csr(np.where(array != 0, array * 7.0, 0.0))
        assert structure_fingerprint(first) == structure_fingerprint(second)
        options = MultiplyOptions(config=small_config, plan_cache=cache)
        atmult(first, first, options=options)
        result, _ = atmult(second, second, options=options)
        dense = second.to_dense()
        np.testing.assert_allclose(result.to_dense(), dense @ dense, atol=1e-10)
        assert cache.stats()["hits"] == 1

    def test_config_hash_invalidates(self, rng, small_config, cache):
        array = random_sparse_array(rng, 64, 64, 0.15)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        atmult(
            matrix,
            matrix,
            options=MultiplyOptions(config=small_config, plan_cache=cache),
        )
        # a different cost model is a different planning input
        atmult(
            matrix,
            matrix,
            options=MultiplyOptions(
                config=small_config,
                cost_model=CostModel(write_threshold=0.9),
                plan_cache=cache,
            ),
        )
        # so is a different memory limit or ablation flag
        atmult(
            matrix,
            matrix,
            options=MultiplyOptions(
                config=small_config, plan_cache=cache, use_estimation=False
            ),
        )
        stats = cache.stats()
        assert stats["misses"] == 3
        assert stats["hits"] == 0
        assert stats["entries"] == 3


class TestLRU:
    def _distinct_plans(self, rng, small_config, count: int = 4):
        from repro import plan as plan_api

        plans = []
        for _ in range(count):
            matrix = build_at_matrix(
                COOMatrix.from_dense(random_sparse_array(rng, 64, 64, 0.15)),
                small_config,
            )
            plans.append(plan_api(matrix, matrix, config=small_config))
        # distinct patterns => distinct keys
        assert len({p.a_fingerprint for p in plans}) == count
        return plans

    @staticmethod
    def _key(execution_plan) -> PlanKey:
        return PlanKey(
            execution_plan.a_fingerprint,
            execution_plan.b_fingerprint,
            execution_plan.setup_key,
        )

    def test_eviction_under_byte_budget(self, rng, small_config):
        plans = self._distinct_plans(rng, small_config)
        sizes = [p.memory_bytes() for p in plans]
        assert all(size > 0 for size in sizes)
        # budget fits the first two plans exactly; the third must evict
        cache = PlanCache(max_bytes=sizes[0] + sizes[1])
        for execution_plan in plans:
            cache.put(self._key(execution_plan), execution_plan)
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert stats["bytes"] <= cache.max_bytes
        assert len(cache) < len(plans)

    def test_lru_order_evicts_least_recently_used(self, rng, small_config):
        first, second, third, _ = self._distinct_plans(rng, small_config)
        cache = PlanCache(max_bytes=first.memory_bytes() + second.memory_bytes())
        cache.put(self._key(first), first)
        cache.put(self._key(second), second)
        assert cache.get(self._key(first)) is first  # first becomes MRU
        cache.put(self._key(third), third)  # evicts LRU = second
        assert cache.get(self._key(first)) is first
        assert cache.get(self._key(second)) is None
        assert cache.stats()["evictions"] >= 1

    def test_oversized_plan_is_not_cached(self, rng, small_config):
        matrix = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 64, 64, 0.15)),
            small_config,
        )
        tiny = PlanCache(max_bytes=16)
        atmult(
            matrix,
            matrix,
            options=MultiplyOptions(config=small_config, plan_cache=tiny),
        )
        assert len(tiny) == 0

    def test_clear_resets_entries_not_counters(self, rng, small_config, cache):
        matrix = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 64, 64, 0.15)),
            small_config,
        )
        options = MultiplyOptions(config=small_config, plan_cache=cache)
        atmult(matrix, matrix, options=options)
        atmult(matrix, matrix, options=options)
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats()["hits"] == 1


class TestObserveMetrics:
    def test_hit_miss_counters_land_in_session(self, rng, small_config, cache):
        matrix = build_at_matrix(
            COOMatrix.from_dense(random_sparse_array(rng, 64, 64, 0.15)),
            small_config,
        )
        options = MultiplyOptions(config=small_config, plan_cache=cache)
        with observe() as obs:
            atmult(matrix, matrix, options=options)
            atmult(matrix, matrix, options=options)
        assert obs.metrics.value("plan_cache.misses") == 1
        assert obs.metrics.value("plan_cache.hits") == 1
        assert obs.metrics.value("plan.builds") == 1


class TestPlanKey:
    def test_keys_are_hashable_values(self):
        key = PlanKey("a", "b", "setup")
        assert key == PlanKey("a", "b", "setup")
        assert hash(key) == hash(PlanKey("a", "b", "setup"))
        assert key != PlanKey("a", "b", "other")
