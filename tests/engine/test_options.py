"""MultiplyOptions and the legacy-keyword coercion helper."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    COOMatrix,
    MultiplyOptions,
    atmult,
    build_at_matrix,
    multiply,
    parallel_atmult,
)
from repro.engine.options import UNSET, coerce_options
from repro.topology import SystemTopology

from ..conftest import heterogeneous_array


@pytest.fixture
def operands(rng, small_config):
    array = heterogeneous_array(rng, 80, 80, background=0.05)
    matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
    return array, matrix


class TestCoercion:
    def test_defaults_pass_through(self):
        opts = coerce_options(None, where="atmult")
        assert opts == MultiplyOptions()

    def test_options_instance_is_used_verbatim(self):
        base = MultiplyOptions(use_estimation=False)
        assert coerce_options(base, where="atmult") is base

    def test_legacy_keyword_overrides_options_field(self):
        base = MultiplyOptions(use_estimation=True)
        with pytest.warns(DeprecationWarning):
            opts = coerce_options(base, where="atmult", use_estimation=False)
        assert opts.use_estimation is False

    def test_unset_legacy_keyword_keeps_options_field(self):
        base = MultiplyOptions(use_estimation=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = coerce_options(base, where="atmult", use_estimation=UNSET)
        assert opts.use_estimation is False

    def test_unknown_keyword_raises_type_error(self):
        with pytest.raises(TypeError, match="atmult"):
            coerce_options(None, where="atmult", bogus=1)

    def test_config_and_cost_model_fold_in_silently(self, small_config):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = coerce_options(None, where="atmult", config=small_config)
        assert opts.config is small_config


class TestOneConsolidatedWarning:
    def test_atmult_emits_exactly_one_deprecation_warning(self, operands, small_config):
        _, matrix = operands
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            atmult(
                matrix,
                matrix,
                config=small_config,
                memory_limit_bytes=None,
                use_estimation=True,
                dynamic_conversion=True,
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        # One warning naming every supplied keyword, not one per keyword.
        assert "atmult()" in message
        assert "memory_limit_bytes" in message
        assert "use_estimation" in message
        assert "dynamic_conversion" in message

    def test_options_only_call_is_warning_free(self, operands, small_config):
        _, matrix = operands
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            atmult(matrix, matrix, options=MultiplyOptions(config=small_config))

    def test_parallel_atmult_warns_once_and_names_itself(self, operands, small_config):
        _, matrix = operands
        topology = SystemTopology(sockets=2, cores_per_socket=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            parallel_atmult(
                matrix, matrix, topology=topology, config=small_config, workers=2
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "parallel_atmult()" in str(deprecations[0].message)


class TestLegacyParity:
    def test_legacy_kwargs_bit_identical_to_options(self, operands, small_config):
        array, matrix = operands
        with pytest.warns(DeprecationWarning):
            legacy_result, legacy_report = atmult(
                matrix,
                matrix,
                config=small_config,
                memory_limit_bytes=None,
                dynamic_conversion=True,
                use_estimation=True,
            )
        options_result, options_report = atmult(
            matrix,
            matrix,
            options=MultiplyOptions(
                config=small_config,
                memory_limit_bytes=None,
                dynamic_conversion=True,
                use_estimation=True,
            ),
        )
        assert np.array_equal(
            legacy_result.to_dense(), options_result.to_dense()
        )
        assert legacy_result.nnz == options_result.nnz
        assert legacy_report.kernel_counts == options_report.kernel_counts
        assert legacy_report.write_threshold == options_report.write_threshold

    def test_ablated_legacy_matches_ablated_options(self, operands, small_config):
        _, matrix = operands
        with pytest.warns(DeprecationWarning):
            legacy_result, _ = atmult(
                matrix, matrix, config=small_config, use_estimation=False
            )
        options_result, _ = atmult(
            matrix,
            matrix,
            options=MultiplyOptions(config=small_config, use_estimation=False),
        )
        assert np.array_equal(
            legacy_result.to_dense(), options_result.to_dense()
        )


class TestMultiplyReturnShape:
    def test_multiply_returns_result_and_report(self, operands, small_config):
        array, matrix = operands
        result, report = multiply(matrix, matrix, config=small_config)
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-10)
        assert report.total_seconds >= 0

    def test_result_only_shape_is_deprecated(self, operands, small_config):
        array, matrix = operands
        with pytest.warns(DeprecationWarning, match="return_report"):
            result = multiply(
                matrix, matrix, config=small_config, return_report=False
            )
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-10)
