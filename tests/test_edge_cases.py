"""Cross-cutting edge cases: degenerate shapes, fuzzed inputs, extremes."""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    COOMatrix,
    SystemConfig,
    atmult,
    atmv,
    build_at_matrix,
    multiply_chain,
)
from repro.errors import ParseError
from repro.formats import matrix_market as mm
from repro.formats.convert import coo_to_csr

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


class TestDegenerateShapes:
    def test_one_by_one(self):
        staged = COOMatrix(1, 1, [0], [0], [3.0])
        at = build_at_matrix(staged, CONFIG)
        result, _ = atmult(at, at, config=CONFIG)
        assert result.to_dense()[0, 0] == 9.0

    def test_single_row_matrix(self, rng):
        row = np.zeros((1, 100))
        row[0, ::7] = rng.random(15)[: len(row[0, ::7])]
        at = build_at_matrix(COOMatrix.from_dense(row), CONFIG)
        col_at = build_at_matrix(COOMatrix.from_dense(row.T), CONFIG)
        outer, _ = atmult(col_at, at, config=CONFIG)  # (100x1) @ (1x100)
        np.testing.assert_allclose(outer.to_dense(), row.T @ row, atol=1e-12)
        inner, _ = atmult(at, col_at, config=CONFIG)  # (1x100) @ (100x1)
        np.testing.assert_allclose(inner.to_dense(), row @ row.T, atol=1e-12)

    def test_extreme_aspect_ratio(self, rng):
        tall = np.where(rng.random((200, 3)) < 0.3, 1.0, 0.0)
        wide = np.where(rng.random((3, 150)) < 0.3, 1.0, 0.0)
        a = build_at_matrix(COOMatrix.from_dense(tall), CONFIG)
        b = build_at_matrix(COOMatrix.from_dense(wide), CONFIG)
        result, _ = atmult(a, b, config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), tall @ wide)

    def test_identity_chain(self, rng):
        n = 24
        eye = build_at_matrix(COOMatrix.from_dense(np.eye(n)), CONFIG)
        data = rng.random((n, n))
        at = build_at_matrix(COOMatrix.from_dense(data), CONFIG)
        result, _ = multiply_chain([eye, at, eye], config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), data, atol=1e-12)

    def test_atmv_single_column(self):
        staged = COOMatrix(5, 1, [0, 4], [0, 0], [2.0, 3.0])
        at = build_at_matrix(staged, CONFIG)
        np.testing.assert_allclose(atmv(at, [2.0]), [4.0, 0, 0, 0, 6.0])


class TestNumericalExtremes:
    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_tiny_and_huge_values_survive(self):
        staged = COOMatrix(2, 2, [0, 1], [0, 1], [1e-300, 1e300])
        at = build_at_matrix(staged, CONFIG)
        result, _ = atmult(at, at, config=CONFIG)
        dense = result.to_dense()
        assert dense[0, 0] == pytest.approx(1e-600, abs=1e-290)
        assert np.isinf(dense[1, 1]) or dense[1, 1] == pytest.approx(1e600)

    def test_negative_values(self, rng):
        array = rng.standard_normal((40, 40))
        array[np.abs(array) < 1.0] = 0.0
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        result, _ = atmult(at, at, config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-10)

    def test_exact_cancellation_in_product(self):
        # A @ A has a structural non-zero that cancels numerically.
        a = np.array([[0.0, 1.0, 1.0], [0.0, 0.0, 0.0], [0.0, 1.0, -1.0]])
        at = build_at_matrix(COOMatrix.from_dense(a), CONFIG)
        result, _ = atmult(at, at, config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a @ a)


class TestMatrixMarketFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        """The parser either succeeds or raises ParseError — nothing else."""
        with contextlib.suppress(ParseError):
            mm.loads(text)

    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(-10, 10)),
            max_size=10,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_valid_matrix(self, rows, cols, entries):
        valid = [(r, c, v) for r, c, v in entries if r < rows and c < cols and v]
        coo = COOMatrix(
            rows,
            cols,
            [e[0] for e in valid],
            [e[1] for e in valid],
            [e[2] for e in valid],
        ).sum_duplicates()
        back = mm.loads(mm.dumps(coo))
        np.testing.assert_allclose(back.to_dense(), coo.to_dense())


class TestConfigExtremes:
    def test_tiny_llc(self):
        config = SystemConfig(llc_bytes=64)
        assert config.b_atomic >= 2
        assert config.max_dense_tile_dim() >= 1

    def test_huge_llc(self):
        config = SystemConfig(llc_bytes=1 << 36)  # 64 GiB
        assert config.b_atomic & (config.b_atomic - 1) == 0
        assert config.max_sparse_tile_dim(1e-9) > config.max_dense_tile_dim()

    def test_b_atomic_larger_than_matrix(self, rng):
        """Matrix smaller than one atomic block: a single tile."""
        array = np.where(rng.random((10, 12)) < 0.3, 1.0, 0.0)
        at = build_at_matrix(COOMatrix.from_dense(array), SystemConfig(b_atomic=128))
        assert at.num_tiles() <= 1
        np.testing.assert_allclose(at.to_dense(), array)

    def test_duplicate_heavy_staging(self, rng):
        """Many duplicates collapsing to few entries partition correctly."""
        rows = rng.integers(0, 4, 500)
        cols = rng.integers(0, 4, 500)
        values = rng.random(500)
        staged = COOMatrix(32, 32, rows, cols, values)
        at = build_at_matrix(staged, CONFIG)
        np.testing.assert_allclose(at.to_dense(), staged.to_dense())
        result, _ = atmult(at, at, config=CONFIG)
        expected = staged.to_dense() @ staged.to_dense()
        np.testing.assert_allclose(result.to_dense(), expected, atol=1e-9)

    def test_csr_of_duplicates(self):
        csr = coo_to_csr(COOMatrix(2, 2, [0, 0, 0], [1, 1, 1], [1.0, 1.0, 1.0]))
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == 3.0
