"""Service crash recovery: SIGKILL the server mid-job, restart, resume.

The service-layer headline guarantee: a server killed with SIGKILL while
a checkpointed multiply job is running can be restarted on the same job
directory and finishes the job with a result bit-identical to an
uninterrupted run.  As in ``test_crash_recovery``, the child kills
*itself* from inside ``CheckpointStore.flush`` after a fixed number of
flushes, making the kill point deterministic.
"""

from __future__ import annotations

import importlib.util
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

KILL_AFTER_FLUSHES = 3
JOB_ID = "recovery-job"

# Both server runs build identical operands from this module, so the
# plan fingerprint matches and the job's checkpoint journal is accepted.
WORKLOAD = '''\
"""Deterministic workload shared by the killed and the resumed server."""
import numpy as np

from repro import COOMatrix, SystemConfig
from repro.service import MatrixRegistry

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build_registry():
    rng = np.random.default_rng(20260808)

    def heterogeneous(rows, cols):
        mask = rng.random((rows, cols)) < 0.06
        array = np.where(mask, rng.uniform(0.1, 1.0, (rows, cols)), 0.0)
        block = min(rows, cols) // 3
        array[:block, :block] = rng.uniform(0.1, 1.0, (block, block))
        return array

    registry = MatrixRegistry(config=CONFIG)
    registry.register("A", COOMatrix.from_dense(heterogeneous(96, 72)))
    registry.register("B", COOMatrix.from_dense(heterogeneous(72, 88)))
    return registry
'''

CHILD = '''\
"""Run the matrix service; optionally SIGKILL ourselves after N flushes."""
import asyncio
import os
import signal
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from workload import CONFIG, build_registry

from repro import CheckpointStore, MultiplyOptions
from repro.service import JobState, MatrixService

job_dir, job_id, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])

if kill_after:
    original_flush = CheckpointStore.flush

    def killing_flush(self):
        written = original_flush(self)
        if self.flushes >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return written

    CheckpointStore.flush = killing_flush


async def main():
    service = MatrixService(
        build_registry(),
        job_dir=job_dir,
        workers=1,
        options=MultiplyOptions(config=CONFIG, checkpoint_flush_pairs=1),
    )
    await service.start()
    try:
        await service.status(job_id)  # resumed run: job already recovered
    except Exception:
        await service.submit(
            tenant="t1", op="multiply", a="A", b="B", job_id=job_id
        )
    status = await service.wait(job_id, timeout=120.0)
    await service.stop()
    if status.state is not JobState.DONE:
        raise SystemExit(f"job ended {status.state.value}: {status.error}")


asyncio.run(main())
'''


@pytest.fixture
def scripts(tmp_path):
    (tmp_path / "workload.py").write_text(WORKLOAD, encoding="utf-8")
    child = tmp_path / "child.py"
    child.write_text(CHILD, encoding="utf-8")
    return child


def load_workload(tmp_path):
    spec = importlib.util.spec_from_file_location(
        "service_recovery_workload", tmp_path / "workload.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_child(scripts, job_dir, kill_after: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_SRC)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, str(scripts), str(job_dir), JOB_ID, str(kill_after)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestServiceSigkillResume:
    def test_restarted_server_resumes_bit_identically(self, scripts, tmp_path):
        from repro import MultiplyOptions, atmult
        from repro.service import JobState, JobStore

        job_dir = tmp_path / "jobs"
        killed = run_child(scripts, job_dir, KILL_AFTER_FLUSHES)
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        store = JobStore(job_dir)
        record = store.load(JOB_ID)
        assert record.state is JobState.RUNNING  # died mid-flight
        survivors = sorted(
            store.checkpoint_dir(JOB_ID).glob("pairs/pair-*.npz")
        )
        assert len(survivors) == KILL_AFTER_FLUSHES

        resumed = run_child(scripts, job_dir, 0)
        assert resumed.returncode == 0, resumed.stderr

        record = store.load(JOB_ID)
        assert record.state is JobState.DONE

        workload = load_workload(tmp_path)
        registry = workload.build_registry()
        reference, report = atmult(
            registry.get("A"),
            registry.get("B"),
            options=MultiplyOptions(config=workload.CONFIG),
        )
        assert report.pairs_executed > KILL_AFTER_FLUSHES
        # CRC-checked on load; bit-identical to the uninterrupted run.
        assert np.array_equal(store.load_result(JOB_ID), reference.to_dense())
