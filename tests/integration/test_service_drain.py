"""Graceful drain: SIGTERM finishes or checkpoints in-flight, exits 0.

Two layers are covered.  The subprocess test drives the real
``repro serve`` CLI: a server with a backlog of jobs receives SIGTERM,
prints its drain banner, leaves no ``RUNNING`` record stranded on disk
and exits 0; a second server on the same job directory re-enqueues what
was left ``QUEUED`` and finishes it.  The in-process test pins the
checkpoint-cancel path deterministically: ``drain(timeout=~0)`` trips
the running job's token, the record reverts to ``QUEUED``, and a
restarted service completes it bit-identically.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import COOMatrix, MultiplyOptions, SystemConfig
from repro.formats import write_matrix_market
from repro.service import JobState, JobStore, MatrixRegistry, MatrixService
from repro.service.client import ServiceClient

from ..conftest import heterogeneous_array

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DRAIN_JOBS = ("drain-1", "drain-2", "drain-3")


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def operands(rng):
    return (
        heterogeneous_array(rng, 96, 72, background=0.06),
        heterogeneous_array(rng, 72, 88, background=0.06),
    )


class TestServeSigtermDrain:
    def start_serve(self, tmp_path, matrices, job_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_SRC)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--matrix", f"A={matrices['A']}",
                "--matrix", f"B={matrices['B']}",
                "--job-dir", str(job_dir),
                "--port", "0",
                "--serve-workers", "1",
                "--drain-timeout", "10",
                "--llc-kib", "8",
                "--b-atomic", "16",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = process.stdout.readline()
        assert banner.startswith("serving on "), (
            f"server never came up: {banner!r}\n{process.stderr.read()}"
        )
        port = int(banner.rsplit(":", 1)[1])
        process.stdout.readline()  # the matrices/job-dir line
        return process, port

    def test_sigterm_drains_cleanly_and_restart_finishes_the_backlog(
        self, tmp_path, operands
    ):
        a, b = operands
        matrices = {"A": tmp_path / "a.mtx", "B": tmp_path / "b.mtx"}
        write_matrix_market(COOMatrix.from_dense(a), matrices["A"])
        write_matrix_market(COOMatrix.from_dense(b), matrices["B"])
        job_dir = tmp_path / "jobs"

        process, port = self.start_serve(tmp_path, matrices, job_dir)
        try:
            with ServiceClient("127.0.0.1", port) as client:
                for job_id in DRAIN_JOBS:
                    submitted = client.submit(
                        tenant="drain", op="multiply", a="A", b="B",
                        job_id=job_id,
                    )
                    assert submitted == job_id
        finally:
            # one worker, three jobs: at most one is running, the rest
            # are still queued when the drain signal lands.
            process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr
        assert "draining" in stdout
        assert "drained; queued jobs will resume on the next server" in stdout

        # No stranded RUNNING record: everything is DONE or QUEUED.
        store = JobStore(job_dir)
        states = {
            record.spec.job_id: record.state for record in store.load_all()
        }
        assert set(states) == set(DRAIN_JOBS)
        assert all(
            state in (JobState.DONE, JobState.QUEUED)
            for state in states.values()
        ), states
        assert JobState.QUEUED in states.values()  # a backlog was left

        # A second server on the same directory finishes the backlog.
        process, port = self.start_serve(tmp_path, matrices, job_dir)
        try:
            with ServiceClient("127.0.0.1", port) as client:
                for job_id in DRAIN_JOBS:
                    status = client.wait(job_id, timeout=120.0)
                    assert status["state"] == "done", status
                results = {
                    job_id: client.result(job_id) for job_id in DRAIN_JOBS
                }
        finally:
            process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr

        for job_id in DRAIN_JOBS:
            np.testing.assert_allclose(results[job_id], a @ b, atol=1e-9)


class TestInProcessDrainCheckpoints:
    def test_drain_reverts_running_job_to_queued_and_resumes(
        self, tmp_path, operands, small_config
    ):
        a, b = operands
        registry = MatrixRegistry(config=small_config)
        registry.register("A", COOMatrix.from_dense(a))
        registry.register("B", COOMatrix.from_dense(b))
        job_dir = tmp_path / "jobs"
        options = MultiplyOptions(
            config=small_config, checkpoint_flush_pairs=1
        )

        async def interrupted():
            service = MatrixService(
                registry, job_dir=job_dir, workers=1, options=options
            )
            await service.start()
            job_id = await service.submit(
                tenant="t", op="multiply", a="A", b="B", job_id="drain-me"
            )
            for _ in range(3000):
                state = (await service.status(job_id)).state
                if state is JobState.RUNNING or state.terminal:
                    break
                await asyncio.sleep(0.001)
            # near-zero budget: the running job is checkpoint-cancelled
            # at its next tile-pair boundary rather than waited out.
            await service.drain(timeout=0.01)
            return JobStore(job_dir).load(job_id).state

        state = run(interrupted())
        # The drain never strands RUNNING; DONE only if the multiply won
        # the race against the token inside the drain window.
        assert state in (JobState.QUEUED, JobState.DONE), state

        async def resumed():
            service = MatrixService(
                registry, job_dir=job_dir, workers=1, options=options
            )
            recovered = await service.start()
            status = await service.wait("drain-me", timeout=120.0)
            assert status.state is JobState.DONE, status.error
            values = await service.result("drain-me")
            await service.stop()
            return recovered, values

        recovered, values = run(resumed())
        if state is JobState.QUEUED:
            assert recovered == 1
        np.testing.assert_allclose(values, a @ b, atol=1e-9)
