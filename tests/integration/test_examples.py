"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; each embeds its own
correctness assertions (oracle comparisons), so a clean exit is a real
end-to-end check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    """Guard: the documented example set exists."""
    expected = {
        "quickstart.py",
        "partitioning_walkthrough.py",
        "text_mining_similarity.py",
        "gene_clustering.py",
        "graph_msbfs.py",
        "iterative_solvers.py",
        "memory_budget.py",
    }
    assert expected <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
