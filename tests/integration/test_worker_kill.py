"""Integration tests: killing supervised workers mid-multiply.

The headline robustness claim of the supervised executor: a worker
SIGKILLed mid-run costs nothing but time — the supervisor detects the
death, reassigns the unfinished pairs, and the final matrix is
bit-identical to an unfaulted run.  A pair that keeps killing its
hosts is quarantined instead of looping forever.
"""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, SystemTopology, build_at_matrix
from repro.core.parallel import parallel_atmult
from repro.engine import MultiplyOptions
from repro.errors import TaskFailedError
from repro.resilience import FaultPlan, RetryPolicy, inject_faults

from ..conftest import heterogeneous_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
TOPOLOGY = SystemTopology(sockets=2, cores_per_socket=2)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


def process_options(**overrides):
    defaults = dict(
        config=CONFIG, execution="processes", heartbeat_interval_seconds=0.05
    )
    defaults.update(overrides)
    return MultiplyOptions(**defaults)


def first_pair_coords(at):
    # Every plan for a self-product includes the (0, 0) pair; killing
    # its host exercises reassignment on a pair that definitely runs.
    return (0, 0)


class TestWorkerKillRecovery:
    def test_sigkilled_worker_is_bit_identical_to_clean_run(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        clean, _ = parallel_atmult(
            at, at, topology=TOPOLOGY, options=process_options()
        )
        crash = FaultPlan(
            0, worker_crash_pairs=(first_pair_coords(at),),
            worker_crash_attempts=1,
        )
        with inject_faults(crash):
            survived, report = parallel_atmult(
                at, at, topology=TOPOLOGY, options=process_options()
            )
        np.testing.assert_array_equal(survived.to_dense(), clean.to_dense())
        failure = report.failure
        assert failure.worker_deaths >= 1
        assert failure.pairs_reassigned >= 1
        assert failure.pairs_quarantined == 0
        assert not failure.clean
        assert "worker deaths" in failure.summary()
        assert any(record.died for record in failure.workers.values())

    def test_repeat_killer_pair_is_quarantined(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        coords = first_pair_coords(at)
        # The pair kills *every* host it is dispatched to; after two
        # murdered workers the supervisor quarantines it instead of
        # feeding it a third.
        crash = FaultPlan(
            0, worker_crash_pairs=(coords,), worker_crash_attempts=99
        )
        with inject_faults(crash):
            with pytest.raises(TaskFailedError, match=r"\(0, 0\)"):
                parallel_atmult(
                    at, at, topology=TOPOLOGY, options=process_options()
                )


class TestFaultInjectionParity:
    def test_seeded_kernel_faults_reproduce_across_backends(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        policy = RetryPolicy(max_attempts=8)

        def run(execution):
            plan = FaultPlan(3, kernel_error_rate=0.2)
            with inject_faults(plan):
                result, report = parallel_atmult(
                    at, at, topology=TOPOLOGY,
                    options=process_options(
                        execution=execution, resilience=policy
                    ),
                )
            return result, report, plan

        threaded, thread_report, thread_plan = run("threads")
        supervised, process_report, process_plan = run("processes")
        np.testing.assert_array_equal(
            supervised.to_dense(), threaded.to_dense()
        )
        # Fault decisions hash (seed, site, task, attempt): the same
        # pairs fail on the same attempts regardless of which process
        # hosts them, so the event totals agree exactly.
        assert process_plan.injected == thread_plan.injected
        assert process_plan.injected > 0
        assert (
            process_report.failure.retries == thread_report.failure.retries
        )
        assert process_report.failure.retries > 0
