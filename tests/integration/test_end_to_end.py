"""End-to-end integration tests: suite matrices through the full pipeline."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    COOMatrix,
    CostModel,
    SystemConfig,
    SystemTopology,
    WorkerTeamScheduler,
    atmult,
    build_at_matrix,
    distribute_tile_rows,
)
from repro.core.builder import ATMatrixBuilder
from repro.formats import coo_to_csr
from repro.generate import load_matrix
from repro.kernels import spspsp_gemm

# The scaled benchmark configuration (384 KiB LLC -> b_atomic = 128).
CONFIG = SystemConfig()

# Small/medium representatives of every topology family in Table I.
FAST_KEYS = ["R1", "R2", "R3", "R7", "G1", "G5", "G9"]


def scipy_oracle(coo: COOMatrix) -> sp.csr_matrix:
    return sp.csr_matrix(
        (coo.values, (coo.row_ids, coo.col_ids)), shape=coo.shape
    )


@pytest.mark.parametrize("key", FAST_KEYS)
def test_self_multiplication_matches_scipy(key):
    staged = load_matrix(key)
    oracle = (scipy_oracle(staged) @ scipy_oracle(staged)).tocsr()
    oracle.sum_duplicates()

    at = build_at_matrix(staged, CONFIG)
    result, report = atmult(at, at, config=CONFIG)
    got = result.to_csr()

    assert got.nnz == oracle.nnz
    got_sp = sp.csr_matrix(
        (got.values, got.indices, got.indptr), shape=got.shape
    )
    delta = (got_sp - oracle)
    assert abs(delta).max() < 1e-8
    assert report.total_seconds > 0


@pytest.mark.parametrize("key", ["R3", "G1"])
def test_partitioning_is_lossless_on_suite(key):
    staged = load_matrix(key)
    at, report = ATMatrixBuilder(CONFIG).build_with_report(staged)
    assert at.nnz == staged.sum_duplicates().nnz
    back = at.to_coo().sum_duplicates()
    assert back == staged.sum_duplicates()
    assert report.tiles == len(at.tiles)


def test_mixed_sparse_dense_multiplication_on_suite():
    staged = load_matrix("R1")
    at = build_at_matrix(staged, CONFIG)
    rng = np.random.default_rng(0)
    k = staged.cols
    dense_cols = 64
    dense = COOMatrix.from_dense(rng.random((k, dense_cols)))
    result, _ = atmult(at, coo_to_csr(dense), config=CONFIG)
    expected = staged.to_dense() @ dense.to_dense()
    np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-9, atol=1e-9)


def test_at_matrix_beats_baseline_on_power_network():
    """The paper's headline case: R3 has dense diagonal blocks (Fig. 8a)."""
    import time

    staged = load_matrix("R3")
    csr = coo_to_csr(staged)
    start = time.perf_counter()
    spspsp_gemm(csr, csr)
    baseline = time.perf_counter() - start

    at = build_at_matrix(staged, CONFIG)
    start = time.perf_counter()
    atmult(at, at, config=CONFIG)
    tiled = time.perf_counter() - start
    assert tiled < baseline  # ATMULT must win on the dense-block topology


def test_memory_limited_pipeline():
    staged = load_matrix("R1")
    at = build_at_matrix(staged, CONFIG)
    unlimited, _ = atmult(at, at, config=CONFIG)
    limit = unlimited.to_csr().memory_bytes() * 1.2
    bounded, report = atmult(at, at, config=CONFIG, memory_limit_bytes=limit)
    assert bounded.memory_bytes() <= limit
    assert report.water_level is not None
    assert bounded.to_csr().nnz == unlimited.to_csr().nnz


def test_numa_schedule_from_real_run():
    """ATMULT task records replay through the topology simulator."""
    staged = load_matrix("R2")
    topo = SystemTopology(sockets=2, cores_per_socket=2)
    at = distribute_tile_rows(build_at_matrix(staged, CONFIG), topo)
    _, report = atmult(at, at, config=CONFIG)
    schedule = WorkerTeamScheduler(topo).run(report.tasks)
    assert schedule.tasks == len(report.tasks)
    assert schedule.makespan_seconds > 0
    assert 0 < schedule.parallel_efficiency <= 1.0


def test_cost_model_thresholds_consistent_with_config():
    model = CostModel()
    assert model.read_threshold == 0.25  # the paper's configured rho0_R
    turnaround = model.solve_write_turnaround(
        CONFIG.b_atomic, CONFIG.b_atomic, CONFIG.b_atomic, 0.05, 0.05
    )
    # The write threshold approximates the turnaround's order of magnitude.
    assert turnaround < model.read_threshold
