"""The paper's qualitative claims, encoded as executable assertions.

Each test pins one sentence of the paper to a measurable check on the
scaled suite.  These complement the benches: the benches *report* the
numbers, these tests *fail the build* if a claim stops holding.
"""

import time

import numpy as np
import pytest

from repro import (
    COOMatrix,
    CostModel,
    SystemConfig,
    atmult,
    build_at_matrix,
    fixed_grid_at_matrix,
)
from repro.core.builder import ATMatrixBuilder
from repro.formats import coo_to_csr
from repro.generate import load_matrix
from repro.kernels import spspsp_gemm
from repro.kinds import StorageKind

CONFIG = SystemConfig()  # the scaled benchmark configuration


@pytest.fixture(scope="module")
def r3():
    """The power-network matrix (dense diagonal blocks, paper Fig. 2)."""
    staged = load_matrix("R3")
    return staged, coo_to_csr(staged), build_at_matrix(staged, CONFIG)


@pytest.fixture(scope="module")
def r7():
    """The hypersparse band matrix (no dense regions)."""
    staged = load_matrix("R7")
    return staged, coo_to_csr(staged), build_at_matrix(staged, CONFIG)


class TestSectionII:
    def test_claim_hypersparse_stored_in_single_tile(self, r7):
        """§II-B2: a sparse matrix without notable dense subregions 'would
        be stored in a single, sparse tile' — up to the Eq. 2 dimension
        bound, which our scaled R7 exceeds; so: few, all-sparse tiles."""
        _, _, at = r7
        assert at.num_tiles(StorageKind.DENSE) == 0
        # Far fewer tiles than the occupied fixed-grid cells.
        staged = at.to_coo()
        fixed = fixed_grid_at_matrix(staged, CONFIG)
        assert at.num_tiles() < fixed.num_tiles() / 5

    def test_claim_memory_never_above_plain_dense(self, r3):
        """§II-C3: AT Matrix memory 'is always lower than a plain dense
        array'."""
        staged, _, at = r3
        dense_bytes = staged.rows * staged.cols * CONFIG.dense_element_bytes
        assert at.memory_bytes() < dense_bytes

    def test_claim_worst_case_sparse_overhead_bounded(self):
        """§II-C3: worst case all tiles just above rho0_R -> at most
        S_d / (rho0_R * S_sp) = 2x the sparse representation."""
        rng = np.random.default_rng(5)
        n = 512
        # Every atomic block at density just above the 0.25 threshold.
        array = np.where(rng.random((n, n)) < 0.26, rng.random((n, n)), 0.0)
        staged = COOMatrix.from_dense(array)
        at = build_at_matrix(staged, CONFIG)
        sparse_bytes = staged.nnz * CONFIG.sparse_element_bytes
        bound = CONFIG.dense_element_bytes / (0.25 * CONFIG.sparse_element_bytes)
        assert at.memory_bytes() <= bound * sparse_bytes * 1.01


class TestSectionIV:
    def test_claim_partitioning_cheaper_than_multiplication_on_structured(self, r3):
        """§IV-B: 'the duration of the partitioning process is smaller
        than a single execution of the traditional multiplication'
        (for the structured matrices)."""
        staged, csr, _ = r3
        start = time.perf_counter()
        spspsp_gemm(csr, csr)
        multiply_seconds = time.perf_counter() - start
        _, report = ATMatrixBuilder(CONFIG).build_with_report(staged)
        assert report.total_seconds < multiply_seconds

    def test_claim_atmult_outperforms_baseline_on_dense_blocks(self, r3):
        """§IV-C: ATMULT wins clearly when 'there are distinct regions of
        a significantly higher local density ... for example matrix R3'."""
        _, csr, at = r3
        start = time.perf_counter()
        spspsp_gemm(csr, csr)
        baseline = time.perf_counter() - start
        start = time.perf_counter()
        atmult(at, at, config=CONFIG)
        tiled = time.perf_counter() - start
        assert tiled < baseline / 1.5  # comfortably ahead, not a coin flip

    def test_claim_estimation_cost_negligible_on_structured(self, r3):
        """§IV-D: 'the part of the density estimation is for most
        instances with less than 0.1% of ATMULT runtime negligible'
        (we allow 1% for the interpreted stack)."""
        _, _, at = r3
        _, report = atmult(at, at, config=CONFIG)
        assert report.estimate_fraction < 0.01

    def test_claim_write_threshold_far_below_read_threshold(self):
        """§III-C: rho0_W 'has usually a much lower value' than rho0_R."""
        model = CostModel()
        assert model.write_threshold <= model.read_threshold / 3
        turnaround = model.solve_write_turnaround(128, 128, 128, 0.05, 0.05)
        assert turnaround < model.read_threshold

    def test_claim_memory_breakdown_accounts_everything(self, r3):
        _, _, at = r3
        breakdown = at.memory_breakdown()
        assert sum(breakdown.values()) == at.memory_bytes()
        assert breakdown["dense"] > 0 and breakdown["sparse"] > 0
