"""Crash-recovery acceptance test: SIGKILL a checkpointed multiply, resume.

The issue's headline guarantee: a multiplication killed with SIGKILL and
resumed produces a result bit-identical to the uninterrupted run,
re-executing only the pairs after the last flush.  The child process
kills *itself* from inside ``CheckpointStore.flush`` after a fixed
number of flushes, so the kill point is deterministic: exactly
``KILL_AFTER_FLUSHES`` records are durable when the process dies.
"""

from __future__ import annotations

import importlib.util
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

KILL_AFTER_FLUSHES = 3

# Both processes build the exact same operands from this module, so the
# plan fingerprints match and the journal is accepted on resume.
WORKLOAD = '''\
"""Deterministic workload shared by the killed child and the parent."""
import numpy as np

from repro import COOMatrix, SystemConfig, build_at_matrix

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build():
    rng = np.random.default_rng(20260806)

    def heterogeneous(rows, cols):
        mask = rng.random((rows, cols)) < 0.06
        array = np.where(mask, rng.uniform(0.1, 1.0, (rows, cols)), 0.0)
        block = min(rows, cols) // 3
        array[:block, :block] = rng.uniform(0.1, 1.0, (block, block))
        return array

    a = heterogeneous(96, 72)
    b = heterogeneous(72, 88)
    at_a = build_at_matrix(COOMatrix.from_dense(a), CONFIG)
    at_b = build_at_matrix(COOMatrix.from_dense(b), CONFIG)
    return at_a, at_b
'''

CHILD = '''\
"""Run a checkpointed multiply and SIGKILL ourselves after N flushes."""
import os
import signal
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from workload import CONFIG, build

from repro import CheckpointStore, MultiplyOptions, atmult

directory, kill_after = sys.argv[1], int(sys.argv[2])
store = CheckpointStore(directory)
original_flush = CheckpointStore.flush


def killing_flush(self):
    written = original_flush(self)
    if self.flushes >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)
    return written


CheckpointStore.flush = killing_flush
at_a, at_b = build()
options = MultiplyOptions(config=CONFIG, checkpoint=store, checkpoint_flush_pairs=1)
atmult(at_a, at_b, options=options)
sys.exit(7)  # unreachable: the kill must fire before the run completes
'''


@pytest.fixture
def scripts(tmp_path):
    (tmp_path / "workload.py").write_text(WORKLOAD, encoding="utf-8")
    child = tmp_path / "child.py"
    child.write_text(CHILD, encoding="utf-8")
    return child


def load_workload(tmp_path):
    spec = importlib.util.spec_from_file_location(
        "crash_recovery_workload", tmp_path / "workload.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSigkillResume:
    def test_resumed_run_is_bit_identical(self, scripts, tmp_path):
        from repro import CheckpointStore, MultiplyOptions, atmult

        checkpoint_dir = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_SRC)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        process = subprocess.run(
            [
                sys.executable,
                str(scripts),
                str(checkpoint_dir),
                str(KILL_AFTER_FLUSHES),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL, process.stderr
        survivors = sorted(checkpoint_dir.glob("pairs/pair-*.npz"))
        # flush interval 1: every flush writes exactly one pair record.
        assert len(survivors) == KILL_AFTER_FLUSHES

        workload = load_workload(tmp_path)
        at_a, at_b = workload.build()
        reference, reference_report = atmult(
            at_a, at_b, options=MultiplyOptions(config=workload.CONFIG)
        )
        total = reference_report.pairs_executed
        assert total > KILL_AFTER_FLUSHES  # the kill interrupted a real run

        store = CheckpointStore(checkpoint_dir, resume=True)
        resumed, report = atmult(
            at_a,
            at_b,
            options=MultiplyOptions(config=workload.CONFIG, checkpoint=store),
        )
        # Only the pairs after the last durable flush re-execute...
        assert report.failure.pairs_resumed == KILL_AFTER_FLUSHES
        assert report.pairs_executed == total - KILL_AFTER_FLUSHES
        # ...and the stitched result is bit-identical to the clean run.
        assert np.array_equal(resumed.to_dense(), reference.to_dense())
