"""Cross-module property-based tests (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix, fixed_grid_at_matrix
from repro.core.atmult import as_at_matrix
from repro.formats import coo_to_csr, coo_to_dense

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_matrix(rng, rows, cols):
    """Random matrix drawn from one of several topology classes."""
    style = rng.integers(0, 4)
    density = float(rng.uniform(0.02, 0.4))
    array = np.where(
        rng.random((rows, cols)) < density, rng.uniform(0.1, 1.0, (rows, cols)), 0.0
    )
    if style == 1 and min(rows, cols) >= 8:  # dense corner
        b = min(rows, cols) // 2
        array[:b, :b] = rng.uniform(0.1, 1.0, (b, b))
    elif style == 2:  # banded
        mask = np.abs(np.arange(rows)[:, None] - np.arange(cols)[None, :]) > 3
        array[mask] = 0.0
    elif style == 3:  # empty rows/cols stripes
        array[:: max(2, rows // 4)] = 0.0
    return array


class TestMultiplicationProperties:
    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_atmult_equals_numpy(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        m, k, n = (int(x) for x in rng.integers(3, 70, 3))
        a = random_matrix(rng, m, k)
        b = random_matrix(rng, k, n)
        at_a = build_at_matrix(COOMatrix.from_dense(a), config)
        at_b = build_at_matrix(COOMatrix.from_dense(b), config)
        result, _ = atmult(at_a, at_b, config=config)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_adaptive_and_fixed_tilings_agree(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        n = int(rng.integers(8, 64))
        a = random_matrix(rng, n, n)
        staged = COOMatrix.from_dense(a)
        adaptive = build_at_matrix(staged, config)
        fixed = fixed_grid_at_matrix(staged, config, mixed=True)
        r1, _ = atmult(adaptive, adaptive, config=config)
        r2, _ = atmult(fixed, fixed, config=config)
        np.testing.assert_allclose(r1.to_dense(), r2.to_dense(), atol=1e-9)

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_operand_representation_invariance(self, seed):
        """The result must not depend on operand representations."""
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        n = int(rng.integers(4, 48))
        a = random_matrix(rng, n, n)
        staged = COOMatrix.from_dense(a)
        variants = [
            build_at_matrix(staged, config),
            coo_to_csr(staged),
            coo_to_dense(staged),
        ]
        reference = None
        for va in variants:
            result, _ = atmult(va, variants[0], config=config)
            dense = result.to_dense()
            if reference is None:
                reference = dense
            else:
                np.testing.assert_allclose(dense, reference, atol=1e-9)

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_accumulation_is_addition(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        n = int(rng.integers(4, 40))
        a = random_matrix(rng, n, n)
        at = build_at_matrix(COOMatrix.from_dense(a), config)
        once, _ = atmult(at, at, config=config)
        twice, _ = atmult(at, at, c=once, config=config)
        np.testing.assert_allclose(twice.to_dense(), 2 * (a @ a), atol=1e-8)


class TestStructuralProperties:
    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_memory_never_exceeds_dense(self, seed):
        """AT Matrix memory is 'always lower than a plain dense array'."""
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        n = int(rng.integers(16, 100))
        a = random_matrix(rng, n, n)
        at = build_at_matrix(COOMatrix.from_dense(a), config)
        dense_bytes = n * n * config.dense_element_bytes
        assert at.memory_bytes() <= dense_bytes + 1e-9

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_wrapped_operand_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        n = int(rng.integers(2, 50))
        a = random_matrix(rng, n, n)
        wrapped = as_at_matrix(coo_to_csr(COOMatrix.from_dense(a)), config)
        np.testing.assert_allclose(wrapped.to_dense(), a)
