"""Metamorphic properties spanning multiple subsystems.

Each test checks an algebraic identity whose two sides exercise
*different* code paths (e.g. transpose+multiply vs. multiply+transpose),
so agreement validates both paths at once.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    COOMatrix,
    SystemConfig,
    add,
    atmult,
    atmv,
    atmv_transposed,
    build_at_matrix,
    multiply_chain,
    scale,
)

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_at(rng, rows, cols, density=0.3):
    array = np.where(
        rng.random((rows, cols)) < density,
        rng.uniform(-1.0, 1.0, (rows, cols)),
        0.0,
    )
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG), array


class TestAlgebraicIdentities:
    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_transpose_of_product(self, seed):
        """(A B)^T == B^T A^T — transposes vs. swapped multiply order."""
        rng = np.random.default_rng(seed)
        m, k, n = (int(v) for v in rng.integers(3, 40, 3))
        a, _ = random_at(rng, m, k)
        b, _ = random_at(rng, k, n)
        left, _ = atmult(a, b, config=CONFIG)
        right, _ = atmult(b.transpose(), a.transpose(), config=CONFIG)
        np.testing.assert_allclose(
            left.transpose().to_dense(), right.to_dense(), atol=1e-9
        )

    @given(st.integers(0, 10_000), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0))
    @SETTINGS
    def test_scalars_factor_out(self, seed, alpha, beta):
        """(aA)(bB) == ab (AB) — scale before vs. after multiplication."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 36))
        a, _ = random_at(rng, n, n)
        b, _ = random_at(rng, n, n)
        scaled_first, _ = atmult(scale(a, alpha), scale(b, beta), config=CONFIG)
        product, _ = atmult(a, b, config=CONFIG)
        scaled_after = scale(product, alpha * beta)
        np.testing.assert_allclose(
            scaled_first.to_dense(), scaled_after.to_dense(), atol=1e-9
        )

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_distributivity(self, seed):
        """A (B + C) == A B + A C — element-wise add vs. two multiplies."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 32))
        a, _ = random_at(rng, n, n)
        b, _ = random_at(rng, n, n)
        c, _ = random_at(rng, n, n)
        fused, _ = atmult(a, add(b, c), config=CONFIG)
        ab, _ = atmult(a, b, config=CONFIG)
        ac, _ = atmult(a, c, config=CONFIG)
        separate = add(ab, ac)
        np.testing.assert_allclose(
            fused.to_dense(), separate.to_dense(), atol=1e-8
        )

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_associativity_via_chain(self, seed):
        """(A B) C == A (B C) — forced parenthesizations must agree."""
        rng = np.random.default_rng(seed)
        dims = [int(v) for v in rng.integers(3, 24, 4)]
        a, _ = random_at(rng, dims[0], dims[1])
        b, _ = random_at(rng, dims[1], dims[2])
        c, _ = random_at(rng, dims[2], dims[3])
        ab, _ = atmult(a, b, config=CONFIG)
        left, _ = atmult(ab, c, config=CONFIG)
        bc, _ = atmult(b, c, config=CONFIG)
        right, _ = atmult(a, bc, config=CONFIG)
        np.testing.assert_allclose(left.to_dense(), right.to_dense(), atol=1e-8)
        chained, _ = multiply_chain([a, b, c], config=CONFIG)
        np.testing.assert_allclose(
            chained.to_dense(), left.to_dense(), atol=1e-8
        )

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_matvec_consistent_with_matmul(self, seed):
        """A @ x as ATMV == column of ATMULT against a 1-column matrix."""
        rng = np.random.default_rng(seed)
        m, k = (int(v) for v in rng.integers(3, 40, 2))
        a, _ = random_at(rng, m, k)
        x = rng.uniform(-1.0, 1.0, k)
        column = build_at_matrix(
            COOMatrix.from_dense(x.reshape(-1, 1)), CONFIG
        )
        via_mv = atmv(a, x)
        via_mm, _ = atmult(a, column, config=CONFIG)
        np.testing.assert_allclose(
            via_mv, via_mm.to_dense().ravel(), atol=1e-9
        )

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_transposed_matvec_identity(self, seed):
        """x^T A computed two ways: atmv_transposed vs. transpose+atmv."""
        rng = np.random.default_rng(seed)
        m, k = (int(v) for v in rng.integers(3, 40, 2))
        a, _ = random_at(rng, m, k)
        x = rng.uniform(-1.0, 1.0, m)
        np.testing.assert_allclose(
            atmv_transposed(a, x), atmv(a.transpose(), x), atol=1e-9
        )

    @given(st.integers(0, 10_000))
    @SETTINGS
    def test_gram_matrix_symmetry(self, seed):
        """A^T A must come out numerically symmetric."""
        rng = np.random.default_rng(seed)
        m, k = (int(v) for v in rng.integers(3, 36, 2))
        a, _ = random_at(rng, m, k)
        gram, _ = atmult(a.transpose(), a, config=CONFIG)
        dense = gram.to_dense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-9)
