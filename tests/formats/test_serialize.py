"""Tests for AT Matrix persistence."""

import io
import json

import numpy as np
import pytest

from repro import COOMatrix, atmult, build_at_matrix, load_at_matrix, save_at_matrix
from repro.errors import IntegrityError, ParseError
from repro.kinds import StorageKind

from ..conftest import heterogeneous_array


@pytest.fixture
def matrix(rng, small_config):
    array = heterogeneous_array(rng, 96, 80)
    return build_at_matrix(COOMatrix.from_dense(array), small_config), array


class TestRoundTrip:
    def test_file_roundtrip(self, matrix, tmp_path):
        at, array = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        np.testing.assert_allclose(loaded.to_dense(), array)

    def test_buffer_roundtrip(self, matrix):
        at, array = matrix
        buffer = io.BytesIO()
        save_at_matrix(at, buffer)
        buffer.seek(0)
        loaded = load_at_matrix(buffer)
        np.testing.assert_allclose(loaded.to_dense(), array)

    def test_tiling_preserved_exactly(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        assert len(loaded.tiles) == len(at.tiles)
        for original, restored in zip(at.tiles, loaded.tiles, strict=True):
            assert restored.extent == original.extent
            assert restored.kind is original.kind
            assert restored.numa_node == original.numa_node

    def test_config_preserved(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        assert loaded.config == at.config

    def test_loaded_matrix_multiplies(self, matrix, tmp_path, small_config):
        at, array = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        result, _ = atmult(loaded, loaded.transpose(), config=small_config)
        np.testing.assert_allclose(result.to_dense(), array @ array.T, atol=1e-9)

    def test_empty_matrix(self, small_config, tmp_path):
        at = build_at_matrix(COOMatrix.empty(32, 32), small_config)
        path = tmp_path / "empty.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        assert loaded.num_tiles() == 0
        assert loaded.shape == (32, 32)

    def test_mixed_kinds_preserved(self, matrix, tmp_path):
        at, _ = matrix
        assert at.num_tiles(StorageKind.DENSE) > 0  # precondition
        assert at.num_tiles(StorageKind.SPARSE) > 0
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        loaded = load_at_matrix(path)
        assert loaded.num_tiles(StorageKind.DENSE) == at.num_tiles(StorageKind.DENSE)


class TestDurability:
    def test_suffix_appended_like_np_savez(self, matrix, tmp_path):
        at, array = matrix
        bare = tmp_path / "matrix"
        save_at_matrix(at, str(bare))
        assert not bare.exists()
        loaded = load_at_matrix(tmp_path / "matrix.npz")
        np.testing.assert_allclose(loaded.to_dense(), array)

    def test_save_leaves_no_temp_files(self, matrix, tmp_path):
        at, _ = matrix
        save_at_matrix(at, tmp_path / "matrix.npz")
        assert [path.name for path in tmp_path.iterdir()] == ["matrix.npz"]

    def test_archive_carries_checksums_for_every_member(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        with np.load(path, allow_pickle=False) as archive:
            members = set(archive.files)
            checksums = json.loads(str(archive["checksums"][()]))
        assert members - {"checksums"} == set(checksums)

    def test_v1_archive_without_checksums_loads(self, matrix, tmp_path):
        at, array = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["checksums"]
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = 1  # rewrite as a version-1 archive
        np.savez_compressed(path, **arrays)
        loaded = load_at_matrix(path)
        np.testing.assert_allclose(loaded.to_dense(), array)

    def test_tampered_member_raises_integrity_error(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        target = next(
            name
            for name, array in arrays.items()
            if name not in ("meta", "tiles", "checksums") and array.size
        )
        tampered = arrays[target].copy()
        tampered.ravel()[0] += 1
        arrays[target] = tampered
        np.savez_compressed(path, **arrays)
        with pytest.raises(IntegrityError, match=target):
            load_at_matrix(path)


class TestErrors:
    def test_truncated_archive_is_a_clear_parse_error(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ParseError, match="not a readable AT Matrix archive"):
            load_at_matrix(path)

    def test_garbage_input_is_a_clear_parse_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01\x02 definitely not a zip")
        with pytest.raises(ParseError, match="not a readable AT Matrix archive"):
            load_at_matrix(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_at_matrix(tmp_path / "nope.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ParseError):
            load_at_matrix(path)

    def test_future_version_rejected(self, matrix, tmp_path):
        at, _ = matrix
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = 999
        np.savez(path, **arrays)
        with pytest.raises(ParseError):
            load_at_matrix(path)
