"""Round-trip tests for representation conversions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import COOMatrix
from repro.formats.convert import (
    coo_to_csr,
    coo_to_dense,
    csr_to_coo,
    csr_to_dense,
    dense_to_coo,
    dense_to_csr,
)

from ..conftest import random_sparse_array


class TestDirectConversions:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.array = random_sparse_array(rng, 9, 14, 0.3)
        self.coo = COOMatrix.from_dense(self.array)

    def test_coo_to_csr(self):
        np.testing.assert_allclose(coo_to_csr(self.coo).to_dense(), self.array)

    def test_coo_to_dense(self):
        np.testing.assert_allclose(coo_to_dense(self.coo).to_dense(), self.array)

    def test_csr_to_coo(self):
        csr = coo_to_csr(self.coo)
        np.testing.assert_allclose(csr_to_coo(csr).to_dense(), self.array)

    def test_csr_to_dense(self):
        csr = coo_to_csr(self.coo)
        np.testing.assert_allclose(csr_to_dense(csr).to_dense(), self.array)

    def test_dense_to_csr(self):
        dense = coo_to_dense(self.coo)
        np.testing.assert_allclose(dense_to_csr(dense).to_dense(), self.array)

    def test_dense_to_coo(self):
        dense = coo_to_dense(self.coo)
        np.testing.assert_allclose(dense_to_coo(dense).to_dense(), self.array)

    def test_coo_duplicates_summed_on_conversion(self):
        coo = COOMatrix(2, 2, [0, 0], [1, 1], [1.0, 2.0])
        assert coo_to_csr(coo).to_dense()[0, 1] == 3.0
        assert coo_to_dense(coo).array[0, 1] == 3.0


class TestConversionCycles:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_all_cycles_preserve_content(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        array = random_sparse_array(rng, rows, cols, 0.35)
        coo = COOMatrix.from_dense(array)
        csr = coo_to_csr(coo)
        dense = coo_to_dense(coo)
        for result in (
            csr_to_coo(csr),
            dense_to_coo(dense),
            dense_to_csr(dense),
            coo_to_csr(csr_to_coo(csr)),
            csr_to_dense(dense_to_csr(dense)),
        ):
            np.testing.assert_allclose(result.to_dense(), array)
