"""Tests for scipy/numpy interoperability adapters."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FormatError
from repro.formats.interop import (
    csr_from_scipy,
    from_numpy,
    from_scipy,
    to_scipy_coo,
    to_scipy_csr,
)

from ..conftest import random_sparse_array


@pytest.fixture
def array(rng):
    return random_sparse_array(rng, 20, 33, 0.2)


class TestFromScipy:
    @pytest.mark.parametrize("format_", ["coo", "csr", "csc", "lil"])
    def test_all_scipy_formats(self, array, format_):
        scipy_matrix = sp.coo_matrix(array).asformat(format_)
        coo = from_scipy(scipy_matrix)
        np.testing.assert_allclose(coo.to_dense(), array)

    def test_csr_from_scipy(self, array):
        csr = csr_from_scipy(sp.csc_matrix(array))
        np.testing.assert_allclose(csr.to_dense(), array)

    def test_duplicates_summed(self):
        scipy_matrix = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([0, 0]))),
            shape=(2, 2),
        )
        assert csr_from_scipy(scipy_matrix).to_dense()[0, 0] == 3.0


class TestToScipy:
    def test_coo_roundtrip(self, array):
        coo = from_numpy(array)
        back = to_scipy_coo(coo)
        np.testing.assert_allclose(back.toarray(), array)

    def test_csr_roundtrip(self, array):
        csr = csr_from_scipy(sp.csr_matrix(array))
        back = to_scipy_csr(csr)
        np.testing.assert_allclose(back.toarray(), array)
        assert sp.issparse(back)


class TestFromNumpy:
    def test_stages_nonzeros(self, array):
        coo = from_numpy(array)
        assert coo.nnz == np.count_nonzero(array)

    def test_rejects_non_2d(self):
        with pytest.raises(FormatError):
            from_numpy(np.zeros(4))

    def test_full_pipeline_from_scipy(self, array):
        """scipy -> AT Matrix -> multiply -> scipy, end to end."""
        from repro import SystemConfig, atmult, build_at_matrix

        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        a = build_at_matrix(from_scipy(sp.csr_matrix(array)), config)
        result, _ = atmult(a, a.transpose(), config=config)
        expected = (sp.csr_matrix(array) @ sp.csr_matrix(array).T).toarray()
        np.testing.assert_allclose(result.to_dense(), expected, atol=1e-9)
