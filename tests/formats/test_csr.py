"""Tests for the from-scratch CSR format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CSRMatrix, S_SPARSE
from repro.errors import FormatError, ShapeError

from ..conftest import random_sparse_array


def build(array: np.ndarray) -> CSRMatrix:
    rows, cols = np.nonzero(array)
    return CSRMatrix.from_arrays_unsorted(
        array.shape[0], array.shape[1], rows, cols, array[rows, cols]
    )


class TestConstruction:
    def test_from_unsorted_arrays(self):
        csr = CSRMatrix.from_arrays_unsorted(2, 3, [1, 0, 0], [2, 1, 0], [3.0, 2.0, 1.0])
        expected = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 3.0]])
        np.testing.assert_allclose(csr.to_dense(), expected)

    def test_duplicates_summed(self):
        csr = CSRMatrix.from_arrays_unsorted(1, 2, [0, 0], [1, 1], [2.0, 3.0])
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == 5.0

    def test_duplicates_kept_when_disabled_and_presorted(self):
        # sum_duplicates=False still sorts; duplicate-free inputs survive.
        csr = CSRMatrix.from_arrays_unsorted(
            2, 2, [1, 0], [0, 1], [1.0, 2.0], sum_duplicates=False
        )
        assert csr.nnz == 2

    def test_empty(self):
        csr = CSRMatrix.empty(3, 4)
        assert csr.nnz == 0
        assert csr.row_nnz().tolist() == [0, 0, 0]

    def test_validation_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1], [0], [1.0])

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1, 0], [0], [1.0])

    def test_validation_rejects_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 2, [0, 1], [2], [1.0])

    def test_validation_rejects_unsorted_columns(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 2.0])

    def test_validation_rejects_duplicate_columns_in_row(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 3, [0, 2], [1, 1], [1.0, 2.0])

    def test_trailing_empty_rows_valid(self):
        csr = CSRMatrix(3, 2, [0, 1, 1, 1], [0], [1.0])
        assert csr.row_nnz().tolist() == [1, 0, 0]


class TestAccess:
    def test_row_slice(self):
        array = np.array([[0.0, 1.0, 2.0], [3.0, 0.0, 0.0]])
        csr = build(array)
        cols, vals = csr.row_slice(0)
        assert cols.tolist() == [1, 2]
        assert vals.tolist() == [1.0, 2.0]

    def test_sorted_keys_ascending(self):
        rng = np.random.default_rng(1)
        csr = build(random_sparse_array(rng, 20, 30, 0.2))
        keys = csr.sorted_keys()
        assert np.all(np.diff(keys) > 0)

    def test_window_ranges_full_width(self):
        array = np.array([[1.0, 0.0], [0.0, 2.0]])
        csr = build(array)
        lo, hi = csr.window_ranges(0, 2, 0, 2)
        assert lo.tolist() == [0, 1]
        assert hi.tolist() == [1, 2]

    def test_window_mask_rebased(self):
        array = np.zeros((4, 4))
        array[2, 3] = 7.0
        csr = build(array)
        rows, cols, vals = csr.window_mask(2, 4, 2, 4)
        assert rows.tolist() == [0]
        assert cols.tolist() == [1]
        assert vals.tolist() == [7.0]

    def test_window_mask_out_of_bounds(self):
        csr = CSRMatrix.empty(2, 2)
        with pytest.raises(ShapeError):
            csr.window_mask(0, 3, 0, 1)

    def test_extract_window_matches_numpy(self):
        rng = np.random.default_rng(7)
        array = random_sparse_array(rng, 15, 11, 0.3)
        csr = build(array)
        sub = csr.extract_window(3, 12, 2, 9)
        np.testing.assert_allclose(sub.to_dense(), array[3:12, 2:9])


class TestAggregates:
    def test_column_nnz(self, rng):
        array = random_sparse_array(rng, 12, 9, 0.3)
        csr = build(array)
        np.testing.assert_array_equal(csr.column_nnz(), (array != 0).sum(axis=0))

    def test_column_nnz_empty(self):
        assert CSRMatrix.empty(3, 4).column_nnz().tolist() == [0, 0, 0, 0]

    def test_diagonal(self, rng):
        array = random_sparse_array(rng, 8, 11, 0.4)
        csr = build(array)
        np.testing.assert_allclose(csr.diagonal(), np.diag(array)[:8])

    def test_diagonal_of_identity(self):
        csr = build(np.eye(5))
        np.testing.assert_allclose(csr.diagonal(), np.ones(5))


class TestTransforms:
    def test_transpose(self):
        rng = np.random.default_rng(2)
        array = random_sparse_array(rng, 8, 13, 0.25)
        csr = build(array)
        np.testing.assert_allclose(csr.transpose().to_dense(), array.T)

    def test_scale(self):
        csr = build(np.array([[2.0, 0.0], [0.0, 4.0]]))
        np.testing.assert_allclose(csr.scale(0.5).to_dense(), [[1.0, 0.0], [0.0, 2.0]])

    def test_memory_model(self):
        csr = build(np.eye(5))
        assert csr.memory_bytes() == 5 * S_SPARSE


class TestProperties:
    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_and_window(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        array = random_sparse_array(rng, rows, cols, 0.3)
        csr = build(array)
        np.testing.assert_allclose(csr.to_dense(), array)
        r0 = seed % (rows + 1)
        r1 = min(rows, r0 + 3)
        c0 = seed % (cols + 1)
        c1 = min(cols, c0 + 4)
        if r0 <= r1 and c0 <= c1:
            sub = csr.extract_window(r0, r1, c0, c1)
            np.testing.assert_allclose(sub.to_dense()[: r1 - r0, : c1 - c0], array[r0:r1, c0:c1])
