"""Tests for the BCSR format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats.bcsr import BCSRMatrix

from ..conftest import as_csr, random_sparse_array


class TestConversion:
    @pytest.mark.parametrize("block", [(1, 1), (2, 2), (3, 3), (2, 4)])
    def test_roundtrip(self, rng, block):
        array = random_sparse_array(rng, 17, 23, 0.2)
        bcsr = BCSRMatrix.from_csr(as_csr(array), *block)
        np.testing.assert_allclose(bcsr.to_dense(), array)

    def test_non_divisible_dimensions(self, rng):
        array = random_sparse_array(rng, 10, 11, 0.3)
        bcsr = BCSRMatrix.from_csr(as_csr(array), 3, 4)
        np.testing.assert_allclose(bcsr.to_dense(), array)

    def test_fill_ratio_measures_overhead(self):
        array = np.zeros((6, 6))
        array[0, 0] = 1.0  # one nnz -> one 3x3 block with 9 slots
        bcsr = BCSRMatrix.from_csr(as_csr(array), 3, 3)
        assert bcsr.num_blocks == 1
        assert bcsr.fill_ratio == pytest.approx(9.0)

    def test_dense_block_is_efficient(self, rng):
        array = np.zeros((6, 6))
        array[:3, :3] = rng.uniform(0.1, 1.0, (3, 3))
        bcsr = BCSRMatrix.from_csr(as_csr(array), 3, 3)
        assert bcsr.num_blocks == 1
        assert bcsr.fill_ratio == pytest.approx(1.0)

    def test_empty_matrix(self):
        from repro.formats.csr import CSRMatrix

        bcsr = BCSRMatrix.from_csr(CSRMatrix.empty(4, 4), 2, 2)
        assert bcsr.num_blocks == 0
        np.testing.assert_allclose(bcsr.to_dense(), np.zeros((4, 4)))


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(FormatError):
            BCSRMatrix(4, 4, 2, 2, np.zeros(5), np.zeros(0), np.zeros((0, 2, 2)))

    def test_bad_blocks_shape(self):
        with pytest.raises(FormatError):
            BCSRMatrix(
                4, 4, 2, 2, np.array([0, 1, 1]), np.array([0]), np.zeros((1, 3, 3))
            )

    def test_block_index_out_of_grid(self):
        with pytest.raises(FormatError):
            BCSRMatrix(
                4, 4, 2, 2, np.array([0, 1, 1]), np.array([9]), np.zeros((1, 2, 2))
            )


class TestSpmv:
    def test_matches_numpy(self, rng):
        array = random_sparse_array(rng, 20, 14, 0.25)
        x = rng.random(14)
        bcsr = BCSRMatrix.from_csr(as_csr(array), 3, 3)
        np.testing.assert_allclose(bcsr.spmv(x), array @ x, atol=1e-12)

    def test_vector_length_checked(self, rng):
        bcsr = BCSRMatrix.from_csr(as_csr(random_sparse_array(rng, 6, 6, 0.4)), 2, 2)
        with pytest.raises(ShapeError):
            bcsr.spmv(np.ones(5))

    @given(st.integers(0, 500), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_spmv_property(self, seed, block_rows, block_cols):
        rng = np.random.default_rng(seed)
        rows, cols = (int(v) for v in rng.integers(1, 25, 2))
        array = random_sparse_array(rng, rows, cols, 0.3)
        x = rng.random(cols)
        bcsr = BCSRMatrix.from_csr(as_csr(array), block_rows, block_cols)
        np.testing.assert_allclose(bcsr.spmv(x), array @ x, atol=1e-12)
