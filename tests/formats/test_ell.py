"""Tests for the ELLPACK format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats.ell import ELLMatrix, PAD

from ..conftest import as_csr, random_sparse_array


class TestConversion:
    def test_roundtrip(self, rng):
        array = random_sparse_array(rng, 15, 22, 0.25)
        ell = ELLMatrix.from_csr(as_csr(array))
        np.testing.assert_allclose(ell.to_dense(), array)
        np.testing.assert_allclose(ell.to_csr().to_dense(), array)

    def test_width_is_max_row_nnz(self, rng):
        array = np.zeros((4, 10))
        array[0, :7] = 1.0
        array[2, 0] = 1.0
        ell = ELLMatrix.from_csr(as_csr(array))
        assert ell.width == 7
        assert ell.nnz == 8

    def test_empty_matrix(self):
        from repro.formats.csr import CSRMatrix

        ell = ELLMatrix.from_csr(CSRMatrix.empty(3, 4))
        assert ell.width == 0
        assert ell.nnz == 0
        np.testing.assert_allclose(ell.to_dense(), np.zeros((3, 4)))

    def test_padding_fraction(self):
        array = np.zeros((2, 4))
        array[0, :4] = 1.0  # row 0 full, row 1 empty: 50% padding
        ell = ELLMatrix.from_csr(as_csr(array))
        assert ell.padding_fraction == pytest.approx(0.5)

    def test_memory_includes_padding(self, rng):
        array = np.zeros((4, 8))
        array[0, :8] = 1.0
        ell = ELLMatrix.from_csr(as_csr(array))
        assert ell.memory_bytes() == 4 * 8 * 16  # all padded slots counted


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(FormatError):
            ELLMatrix(2, 2, np.full((2, 1), PAD), np.zeros((2, 2)))

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            ELLMatrix(2, 2, np.array([[5], [PAD]]), np.array([[1.0], [0.0]]))

    def test_padding_must_be_zero_valued(self):
        with pytest.raises(FormatError):
            ELLMatrix(2, 2, np.array([[PAD], [PAD]]), np.array([[1.0], [0.0]]))


class TestSpmv:
    def test_matches_numpy(self, rng):
        array = random_sparse_array(rng, 20, 15, 0.3)
        x = rng.random(15)
        ell = ELLMatrix.from_csr(as_csr(array))
        np.testing.assert_allclose(ell.spmv(x), array @ x, atol=1e-12)

    def test_vector_length_checked(self, rng):
        ell = ELLMatrix.from_csr(as_csr(random_sparse_array(rng, 5, 5, 0.4)))
        with pytest.raises(ShapeError):
            ell.spmv(np.ones(4))

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_spmv_property(self, seed):
        rng = np.random.default_rng(seed)
        rows, cols = (int(v) for v in rng.integers(1, 30, 2))
        array = random_sparse_array(rng, rows, cols, 0.3)
        x = rng.random(cols)
        ell = ELLMatrix.from_csr(as_csr(array))
        np.testing.assert_allclose(ell.spmv(x), array @ x, atol=1e-12)
