"""Tests for the COO staging format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix
from repro.errors import FormatError, ShapeError
from repro.formats.coo import COO_TRIPLE_BYTES
from repro.zorder.morton import morton_encode


def small_dense_arrays():
    return st.integers(1, 12).flatmap(
        lambda rows: st.integers(1, 12).map(
            lambda cols: np.random.default_rng(rows * 100 + cols)
            .random((rows, cols))
            .round(1)
        )
    )


class TestConstruction:
    def test_from_dense_extracts_nonzeros(self):
        array = np.array([[1.0, 0.0], [0.0, 2.5]])
        coo = COOMatrix.from_dense(array)
        assert coo.nnz == 2
        assert coo.shape == (2, 2)
        np.testing.assert_allclose(coo.to_dense(), array)

    def test_empty(self):
        coo = COOMatrix.empty(3, 4)
        assert coo.nnz == 0
        assert coo.density == 0.0
        assert coo.to_dense().shape == (3, 4)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0, 1], [0], [1.0, 2.0])

    def test_rejects_out_of_range_coordinates(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [2], [0], [1.0])

    def test_rejects_negative_coordinates(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [-1], [0], [1.0])

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ShapeError):
            COOMatrix(0, 2, [], [], [])

    def test_owns_arrays(self):
        rows = np.array([0])
        coo = COOMatrix(2, 2, rows, [0], [1.0])
        rows[0] = 1
        assert coo.row_ids[0] == 0


class TestDuplicates:
    def test_sum_duplicates_merges(self):
        coo = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        merged = coo.sum_duplicates()
        assert merged.nnz == 2
        assert merged.to_dense()[0, 1] == 3.0

    def test_sum_duplicates_drops_cancellation(self):
        coo = COOMatrix(2, 2, [0, 0], [0, 0], [1.5, -1.5])
        assert coo.sum_duplicates().nnz == 0

    def test_sum_duplicates_sorted_row_major(self):
        coo = COOMatrix(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 1.0, 1.0])
        merged = coo.sum_duplicates()
        keys = merged.row_ids * 3 + merged.col_ids
        assert np.all(np.diff(keys) > 0)


class TestTransforms:
    def test_z_ordered_sorts_by_morton(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 64, 200)
        cols = rng.integers(0, 64, 200)
        coo = COOMatrix(64, 64, rows, cols, rng.random(200))
        z = coo.z_ordered()
        codes = morton_encode(z.row_ids, z.col_ids).astype(np.int64)
        assert np.all(np.diff(codes) >= 0)
        np.testing.assert_allclose(z.to_dense(), coo.to_dense())

    def test_transpose(self):
        coo = COOMatrix(2, 3, [0, 1], [2, 0], [4.0, 5.0])
        t = coo.transpose()
        assert t.shape == (3, 2)
        np.testing.assert_allclose(t.to_dense(), coo.to_dense().T)

    def test_extract_window(self):
        array = np.arange(12, dtype=float).reshape(3, 4)
        coo = COOMatrix.from_dense(array)
        window = coo.extract_window(1, 3, 1, 3)
        np.testing.assert_allclose(window.to_dense(), array[1:3, 1:3])

    def test_extract_window_out_of_bounds(self):
        coo = COOMatrix.empty(3, 3)
        with pytest.raises(ShapeError):
            coo.extract_window(0, 4, 0, 2)


class TestAccounting:
    def test_memory_bytes_matches_triple_format(self):
        coo = COOMatrix(4, 4, [0, 1], [1, 2], [1.0, 2.0])
        assert coo.memory_bytes() == 2 * COO_TRIPLE_BYTES

    def test_density(self):
        coo = COOMatrix(4, 5, [0], [0], [1.0])
        assert coo.density == pytest.approx(1 / 20)

    def test_equality(self):
        a = COOMatrix(2, 2, [0, 1], [0, 1], [1.0, 2.0])
        b = COOMatrix(2, 2, [1, 0], [1, 0], [2.0, 1.0])
        assert a == b
        c = COOMatrix(2, 2, [0], [0], [1.0])
        assert a != c


class TestRoundTripProperties:
    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_roundtrip(self, rows, cols, data):
        seed = data.draw(st.integers(0, 1000))
        rng = np.random.default_rng(seed)
        array = np.where(rng.random((rows, cols)) < 0.4, rng.random((rows, cols)), 0.0)
        coo = COOMatrix.from_dense(array)
        np.testing.assert_allclose(coo.to_dense(), array)
        np.testing.assert_allclose(coo.z_ordered().to_dense(), array)
        np.testing.assert_allclose(coo.transpose().transpose().to_dense(), array)
