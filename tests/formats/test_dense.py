"""Tests for the dense row-major format and its windows."""

import numpy as np
import pytest

from repro import DenseMatrix, S_DENSE
from repro.errors import FormatError, ShapeError


class TestConstruction:
    def test_basic(self):
        m = DenseMatrix(np.eye(3))
        assert m.shape == (3, 3)
        assert m.nnz == 3
        assert m.density == pytest.approx(1 / 3)

    def test_zeros(self):
        m = DenseMatrix.zeros(2, 5)
        assert m.nnz == 0
        assert m.shape == (2, 5)

    def test_rejects_non_2d(self):
        with pytest.raises(FormatError):
            DenseMatrix(np.ones(3))

    def test_rejects_empty_dims(self):
        with pytest.raises(ShapeError):
            DenseMatrix.zeros(0, 3)

    def test_copies_input_by_default(self):
        source = np.ones((2, 2))
        m = DenseMatrix(source)
        source[0, 0] = 5.0
        assert m.array[0, 0] == 1.0

    def test_contiguity_enforced(self):
        source = np.ones((4, 4))[:, ::2]  # non-contiguous view
        m = DenseMatrix(source)
        assert m.array.flags.c_contiguous


class TestWindows:
    def test_window_view_is_view(self):
        m = DenseMatrix(np.zeros((4, 4)))
        view = m.window_view(1, 3, 1, 3)
        view[0, 0] = 9.0
        assert m.array[1, 1] == 9.0

    def test_window_view_bounds_checked(self):
        m = DenseMatrix.zeros(3, 3)
        with pytest.raises(ShapeError):
            m.window_view(0, 4, 0, 3)

    def test_extract_window_is_copy(self):
        m = DenseMatrix(np.ones((3, 3)))
        sub = m.extract_window(0, 2, 0, 2)
        sub.array[0, 0] = 7.0
        assert m.array[0, 0] == 1.0


class TestAccounting:
    def test_memory_model_counts_all_cells(self):
        m = DenseMatrix.zeros(10, 20)
        assert m.memory_bytes() == 10 * 20 * S_DENSE

    def test_transpose(self):
        array = np.arange(6, dtype=float).reshape(2, 3)
        np.testing.assert_allclose(DenseMatrix(array).transpose().to_dense(), array.T)

    def test_to_dense_returns_copy(self):
        m = DenseMatrix(np.ones((2, 2)))
        out = m.to_dense()
        out[0, 0] = 3.0
        assert m.array[0, 0] == 1.0
