"""Tests for pre-multiplication re-tiling and ATMatrix transpose."""

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix, retile
from repro.core.retile import align_to_operand, split_tiles_at_cols

from ..conftest import heterogeneous_array, random_sparse_array


CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


class TestSplitTiles:
    def test_content_preserved(self, rng):
        array = heterogeneous_array(rng, 80, 96)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        split = split_tiles_at_cols(at, [16, 48, 80])
        np.testing.assert_allclose(split.to_dense(), array)

    def test_no_tile_straddles_cut(self, rng):
        array = heterogeneous_array(rng, 80, 96)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        cuts = [32, 64]
        split = split_tiles_at_cols(at, cuts)
        for tile in split.tiles:
            for cut in cuts:
                assert not (tile.col0 < cut < tile.col1)

    def test_contained_tiles_shared_not_copied(self, rng):
        array = heterogeneous_array(rng, 64, 64)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        split = split_tiles_at_cols(at, [0, 64])  # boundary cuts only
        assert all(a is b for a, b in zip(at.tiles, split.tiles, strict=True))

    def test_empty_slices_dropped(self, rng):
        # A sparse tile whose nonzeros sit left of the cut: the right
        # slice is empty and must not appear as a tile.
        array = np.zeros((16, 32))
        array[0, 0] = 1.0
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        split = split_tiles_at_cols(at, [16])
        assert all(tile.nnz > 0 for tile in split.tiles)
        np.testing.assert_allclose(split.to_dense(), array)


class TestAlignToOperand:
    def test_alignment_removes_column_slicing(self, rng):
        a_array = random_sparse_array(rng, 64, 96, 0.05)
        b_array = heterogeneous_array(rng, 96, 64)
        a = build_at_matrix(COOMatrix.from_dense(a_array), CONFIG)
        b = build_at_matrix(COOMatrix.from_dense(b_array), CONFIG)
        aligned = align_to_operand(a, b)
        b_cuts = b.row_cuts()
        for tile in aligned.tiles:
            for cut in b_cuts:
                assert not (tile.col0 < cut < tile.col1)
        result, _ = atmult(aligned, b, config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a_array @ b_array, atol=1e-9)

    def test_aligned_result_matches_unaligned(self, rng):
        a_array = random_sparse_array(rng, 48, 80, 0.1)
        b_array = heterogeneous_array(rng, 80, 48)
        a = build_at_matrix(COOMatrix.from_dense(a_array), CONFIG)
        b = build_at_matrix(COOMatrix.from_dense(b_array), CONFIG)
        plain, _ = atmult(a, b, config=CONFIG)
        aligned, _ = atmult(align_to_operand(a, b), b, config=CONFIG)
        np.testing.assert_allclose(aligned.to_dense(), plain.to_dense(), atol=1e-9)


class TestRetile:
    def test_full_repartition_lossless(self, rng):
        array = heterogeneous_array(rng, 96, 96)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        rebuilt = retile(at)
        np.testing.assert_allclose(rebuilt.to_dense(), array)

    def test_retile_to_different_config(self, rng):
        array = heterogeneous_array(rng, 96, 96)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        coarse = SystemConfig(llc_bytes=32 * 1024, b_atomic=32)
        rebuilt = retile(at, coarse)
        assert rebuilt.config.b_atomic == 32
        np.testing.assert_allclose(rebuilt.to_dense(), array)


class TestTranspose:
    def test_transpose_content(self, rng):
        array = heterogeneous_array(rng, 70, 90)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        np.testing.assert_allclose(at.transpose().to_dense(), array.T)

    def test_double_transpose_identity(self, rng):
        array = heterogeneous_array(rng, 50, 50)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        np.testing.assert_allclose(at.transpose().transpose().to_dense(), array)

    def test_transpose_usable_in_atmult(self, rng):
        array = heterogeneous_array(rng, 60, 40)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        gram, _ = atmult(at.transpose(), at, config=CONFIG)
        np.testing.assert_allclose(gram.to_dense(), array.T @ array, atol=1e-9)

    def test_transpose_preserves_kinds(self, rng):
        array = heterogeneous_array(rng, 64, 64)
        at = build_at_matrix(COOMatrix.from_dense(array), CONFIG)
        transposed = at.transpose()
        assert sorted(t.kind.value for t in at.tiles) == sorted(
            t.kind.value for t in transposed.tiles
        )
