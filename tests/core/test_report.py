"""BaseReport: canonical phase dict, deprecated aliases, kwarg parity."""

from __future__ import annotations

import inspect
import json

import pytest

from repro import BaseReport, MultiplyReport, ParallelReport, atmult, multiply
from repro.core.parallel import parallel_atmult

#: keywords the API-alignment redesign guarantees on every multiply entry point
ALIGNED_KEYWORDS = {
    "config",
    "cost_model",
    "memory_limit_bytes",
    "dynamic_conversion",
    "use_estimation",
    "resilience",
    "observer",
}


class TestBaseReport:
    def test_phase_accumulation_and_total(self):
        report = BaseReport()
        report.add_phase("estimate", 1.0)
        report.add_phase("estimate", 0.5)
        report.add_phase("multiply", 2.5)
        assert report.phase("estimate") == pytest.approx(1.5)
        assert report.phase("missing") == 0.0
        assert report.total_seconds == pytest.approx(4.0)
        assert report.phase_fraction("multiply") == pytest.approx(2.5 / 4.0)

    def test_empty_report_fractions_are_zero(self):
        report = BaseReport()
        assert report.total_seconds == 0.0
        assert report.phase_fraction("estimate") == 0.0
        assert report.estimate_fraction == 0.0

    def test_kernel_count_merge(self):
        report = BaseReport()
        report.count_kernel("ddd_gemm")
        report.merge_kernel_counts({"ddd_gemm": 2, "spspsp_gemm": 1})
        assert report.kernel_counts == {"ddd_gemm": 3, "spspsp_gemm": 1}

    def test_as_dict_is_json_serializable(self):
        report = BaseReport()
        report.add_phase("estimate", 0.1)
        report.count_kernel("ddd_gemm")
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["phase_seconds"] == {"estimate": pytest.approx(0.1)}
        assert payload["kernel_counts"] == {"ddd_gemm": 1}
        assert payload["observed"] is False


class TestDeprecatedAliases:
    def test_aliases_read_through_phase_seconds(self):
        report = BaseReport(phase_seconds={"estimate": 1.0, "optimize": 2.0})
        assert report.estimate_seconds == 1.0
        assert report.optimize_seconds == 2.0
        assert report.multiply_seconds == 0.0

    def test_aliases_write_through_phase_seconds(self):
        report = BaseReport()
        report.estimate_seconds = 1.0
        report.optimize_seconds = 2.0
        report.multiply_seconds = 3.0
        assert report.phase_seconds == {
            "estimate": 1.0,
            "optimize": 2.0,
            "multiply": 3.0,
        }

    def test_augmented_assignment_stays_consistent(self):
        # legacy call sites do `report.estimate_seconds += dt`
        report = MultiplyReport()
        report.estimate_seconds += 0.25
        report.estimate_seconds += 0.25
        assert report.phase_seconds["estimate"] == pytest.approx(0.5)
        assert report.estimate_fraction == 1.0

    def test_parallel_wall_seconds_alias(self):
        report = ParallelReport(workers=2)
        report.wall_seconds = 4.0
        assert report.phase_seconds["multiply"] == 4.0
        report.worker_busy_seconds = {"team0-0": 3.0, "team1-0": 3.0}
        assert report.parallel_efficiency == pytest.approx(6.0 / 8.0)

    def test_parallel_efficiency_defaults_to_one(self):
        assert ParallelReport().parallel_efficiency == 1.0


class TestSubclassShapes:
    def test_multiply_report_extends_base(self):
        report = MultiplyReport(write_threshold=0.5)
        assert isinstance(report, BaseReport)
        payload = report.as_dict()
        assert payload["write_threshold"] == 0.5
        assert payload["tasks"] == 0

    def test_parallel_report_extends_base(self):
        report = ParallelReport(pairs=4, products=8, workers=2)
        assert isinstance(report, BaseReport)
        payload = report.as_dict()
        assert payload["pairs"] == 4
        assert payload["products"] == 8
        assert payload["workers"] == 2
        assert payload["parallel_efficiency"] == 1.0


class TestKeywordParity:
    """The redesign aligns keyword surfaces across the multiply entry points."""

    def test_atmult_and_parallel_share_aligned_keywords(self):
        atmult_kwargs = set(inspect.signature(atmult).parameters)
        parallel_kwargs = set(inspect.signature(parallel_atmult).parameters)
        assert ALIGNED_KEYWORDS <= atmult_kwargs
        assert ALIGNED_KEYWORDS <= parallel_kwargs
        # documented intentional divergence: only atmult seeds C, only
        # parallel_atmult takes a topology
        assert "c" in atmult_kwargs and "c" not in parallel_kwargs
        assert "topology" in parallel_kwargs and "topology" not in atmult_kwargs

    def test_multiply_forwards_full_keyword_set(self, rng, small_config):
        from repro import COOMatrix, build_at_matrix
        from ..conftest import heterogeneous_array

        array = heterogeneous_array(rng, 64, 64, background=0.05)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        with pytest.warns(DeprecationWarning):
            result, _ = multiply(
                matrix,
                matrix,
                config=small_config,
                memory_limit_bytes=None,
                dynamic_conversion=True,
                use_estimation=True,
                resilience=None,
                observer=None,
            )
        assert result.shape == (64, 64)
