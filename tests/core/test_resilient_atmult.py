"""End-to-end resilience tests for ATMULT and parallel ATMULT.

These encode the acceptance criteria of the resilience work: with a
seeded plan injecting transient kernel failures into >= 10% of the tile
products, the resilient run must converge to exactly the fault-free
sequential result, and the failure report's accounting equation

    raising faults injected == retries + degradations + failures

must hold.
"""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, build_at_matrix
from repro.core.atmult import atmult
from repro.core.parallel import parallel_atmult
from repro.errors import RetryExhaustedError, TaskFailedError
from repro.resilience import (
    FaultKind,
    FaultPlan,
    RetryPolicy,
    inject_faults,
)
from repro.topology.system import SystemTopology

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
TOPOLOGY = SystemTopology(sockets=4, cores_per_socket=1)
FAST_RETRIES = RetryPolicy(max_attempts=3, backoff_base_seconds=0.0)


@pytest.fixture(scope="module")
def operands():
    """Heterogeneous operands: a dense corner embedded in a sparse sea."""
    rng = np.random.default_rng(12345)
    arr = np.where(rng.random((90, 70)) < 0.08, rng.random((90, 70)), 0.0)
    arr[:24, :24] = rng.random((24, 24))
    brr = np.where(rng.random((70, 80)) < 0.08, rng.random((70, 80)), 0.0)
    a = build_at_matrix(COOMatrix.from_dense(arr), CONFIG)
    b = build_at_matrix(COOMatrix.from_dense(brr), CONFIG)
    return a, b


@pytest.fixture(scope="module")
def square_operand():
    rng = np.random.default_rng(12345)
    arr = np.where(rng.random((80, 80)) < 0.01, rng.random((80, 80)), 0.0)
    arr[:26, :26] = rng.random((26, 26))
    return build_at_matrix(COOMatrix.from_dense(arr), CONFIG)


@pytest.fixture(scope="module")
def clean_result(operands):
    a, b = operands
    result, _ = atmult(a, b, config=CONFIG)
    return result.to_dense()


class TestAcceptanceCriterion:
    def test_retries_converge_bit_for_bit(self, operands, clean_result):
        """Seed 2 injects ~17% transient kernel failures; the resilient
        parallel run must still match fault-free sequential exactly."""
        a, b = operands
        plan = FaultPlan(2, kernel_error_rate=0.12)
        with inject_faults(plan):
            result, report = parallel_atmult(
                a, b, topology=TOPOLOGY, config=CONFIG, resilience=FAST_RETRIES
            )
        injected = plan.count(FaultKind.KERNEL_ERROR)
        assert injected >= 0.10 * report.products  # >= 10% of tile products
        assert np.array_equal(result.to_dense(), clean_result)
        failure = report.failure
        assert failure.failures == 0
        assert injected == failure.retries + failure.degradations + failure.failures

    @pytest.mark.parametrize("seed", [1, 2, 3, 5])
    def test_accounting_equation_across_seeds(self, operands, clean_result, seed):
        a, b = operands
        plan = FaultPlan(seed, kernel_error_rate=0.12)
        with inject_faults(plan):
            result, report = parallel_atmult(
                a, b, topology=TOPOLOGY, config=CONFIG, resilience=FAST_RETRIES
            )
        failure = report.failure
        assert plan.raising_count == (
            failure.retries + failure.degradations + failure.failures
        )
        assert np.array_equal(result.to_dense(), clean_result)

    def test_sequential_atmult_resilience(self, operands, clean_result):
        a, b = operands
        plan = FaultPlan(2, kernel_error_rate=0.12)
        with inject_faults(plan):
            result, report = atmult(a, b, config=CONFIG, resilience=FAST_RETRIES)
        assert np.array_equal(result.to_dense(), clean_result)
        assert report.failure.retries == plan.raising_count


class TestExhaustion:
    def test_sequential_raises_with_pair_coordinates(self, operands):
        a, b = operands
        plan = FaultPlan(0, kernel_error_rate=1.0)
        with inject_faults(plan), pytest.raises(RetryExhaustedError) as excinfo:
            atmult(a, b, config=CONFIG, resilience=FAST_RETRIES)
        pair = excinfo.value.pair
        assert isinstance(pair, tuple) and len(pair) == 2
        assert excinfo.value.attempts == FAST_RETRIES.max_attempts

    def test_parallel_aggregates_failures(self, operands):
        a, b = operands
        plan = FaultPlan(0, kernel_error_rate=1.0)
        with inject_faults(plan), pytest.raises(TaskFailedError) as excinfo:
            parallel_atmult(
                a, b, topology=TOPOLOGY, config=CONFIG, resilience=FAST_RETRIES
            )
        error = excinfo.value
        assert error.pair_errors
        assert all(
            isinstance(e, RetryExhaustedError) for _, e in error.pair_errors
        )
        assert error.report is not None
        assert error.report.failure.failures == len(error.pair_errors)


class TestPartialFailureWithoutResilience:
    """Satellite 1: per-pair errors aggregate even with no policy."""

    def test_aggregated_error_and_preserved_stats(self, operands):
        a, b = operands
        plan = FaultPlan(2, kernel_error_rate=0.12)
        with inject_faults(plan), pytest.raises(TaskFailedError) as excinfo:
            parallel_atmult(a, b, topology=TOPOLOGY, config=CONFIG)
        error = excinfo.value
        assert len(error.pair_errors) == plan.raising_count
        # busy-time statistics for healthy pairs are not lost
        report = error.report
        assert report is not None
        assert sum(report.worker_busy_seconds.values()) > 0.0
        assert report.products > 0

    def test_clean_run_unaffected(self, operands, clean_result):
        a, b = operands
        result, report = parallel_atmult(a, b, topology=TOPOLOGY, config=CONFIG)
        assert np.array_equal(result.to_dense(), clean_result)
        assert report.failure.clean


class TestMemoryPressureDegradation:
    def test_degradation_respects_memory_limit(self, square_operand):
        a = square_operand
        topo = SystemTopology(sockets=2, cores_per_socket=1)
        unlimited, _ = parallel_atmult(a, a, topology=topo, config=CONFIG)
        limit = unlimited.to_csr().memory_bytes() * 1.05
        for seed in (0, 1, 2):
            plan = FaultPlan(seed, memory_pressure_rate=0.05)
            with inject_faults(plan):
                result, report = parallel_atmult(
                    a,
                    a,
                    topology=topo,
                    config=CONFIG,
                    memory_limit_bytes=limit,
                    resilience=FAST_RETRIES,
                )
            assert result.memory_bytes() <= limit
            assert np.allclose(
                result.to_dense(), unlimited.to_dense(), atol=1e-10
            )
            # Real over-budget checks may degrade too, so >= not ==.
            assert report.failure.degradations >= plan.count(
                FaultKind.MEMORY_PRESSURE
            )


class TestCorruptionGuard:
    def test_corrupted_tiles_fall_back_to_reference(self, square_operand):
        a = square_operand
        topo = SystemTopology(sockets=2, cores_per_socket=1)
        clean, _ = atmult(a, a, config=CONFIG)
        plan = FaultPlan(3, corruption_rate=0.04)
        with inject_faults(plan):
            result, report = parallel_atmult(
                a, a, topology=topo, config=CONFIG, resilience=FAST_RETRIES
            )
        assert np.isfinite(result.to_dense()).all()
        assert np.array_equal(result.to_dense(), clean.to_dense())
        if plan.count(FaultKind.CORRUPTION):
            assert report.failure.fallbacks > 0
