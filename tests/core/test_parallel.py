"""Tests for thread-parallel ATMULT."""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, SystemTopology, atmult, build_at_matrix
from repro.core.parallel import parallel_atmult
from repro.errors import ShapeError

from ..conftest import as_csr, heterogeneous_array, random_sparse_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


class TestParallelCorrectness:
    @pytest.mark.parametrize("sockets", [1, 2, 4])
    def test_matches_sequential(self, rng, sockets):
        a = heterogeneous_array(rng, 90, 70)
        b = heterogeneous_array(rng, 70, 80)
        at_a, at_b = build(a), build(b)
        sequential, _ = atmult(at_a, at_b, config=CONFIG)
        topology = SystemTopology(sockets=sockets, cores_per_socket=2)
        parallel, report = parallel_atmult(
            at_a, at_b, topology=topology, config=CONFIG
        )
        np.testing.assert_allclose(
            parallel.to_dense(), sequential.to_dense(), atol=1e-10
        )
        assert report.workers == sockets
        assert report.pairs > 0

    def test_plain_operands(self, rng):
        a = random_sparse_array(rng, 40, 40, 0.2)
        parallel, _ = parallel_atmult(
            as_csr(a), as_csr(a),
            topology=SystemTopology(sockets=2, cores_per_socket=1),
            config=CONFIG,
        )
        np.testing.assert_allclose(parallel.to_dense(), a @ a, atol=1e-10)

    def test_deterministic_across_runs(self, rng):
        a = heterogeneous_array(rng, 80, 80)
        at = build(a)
        topology = SystemTopology(sockets=4, cores_per_socket=1)
        first, _ = parallel_atmult(at, at, topology=topology, config=CONFIG)
        second, _ = parallel_atmult(at, at, topology=topology, config=CONFIG)
        np.testing.assert_array_equal(first.to_dense(), second.to_dense())

    def test_shape_mismatch_rejected(self, rng):
        a = build(random_sparse_array(rng, 8, 9, 0.5))
        with pytest.raises(ShapeError):
            parallel_atmult(a, a, topology=SystemTopology(), config=CONFIG)

    def test_memory_limit_respected(self, rng):
        a = heterogeneous_array(rng, 80, 80)
        at = build(a)
        unlimited, _ = parallel_atmult(
            at, at, topology=SystemTopology(sockets=2, cores_per_socket=1),
            config=CONFIG,
        )
        sparse_size = unlimited.to_csr().memory_bytes()
        bounded, _ = parallel_atmult(
            at, at, topology=SystemTopology(sockets=2, cores_per_socket=1),
            config=CONFIG, memory_limit_bytes=sparse_size * 1.05,
        )
        assert bounded.memory_bytes() <= sparse_size * 1.05
        np.testing.assert_allclose(
            bounded.to_dense(), unlimited.to_dense(), atol=1e-10
        )


class TestParallelStress:
    def test_many_pairs_many_workers(self, rng):
        """Stress: a fragmented tiling with more workers than pairs per
        strip; every run must agree with the sequential result bit-wise
        on structure and numerically on values."""
        array = np.where(rng.random((160, 160)) < 0.15, rng.random((160, 160)), 0.0)
        # Add several dense blocks to force mixed tiles and conversions.
        for offset in (0, 48, 96):
            array[offset : offset + 16, offset : offset + 16] = rng.random((16, 16))
        at = build(array)
        sequential, _ = atmult(at, at, config=CONFIG)
        topology = SystemTopology(sockets=8, cores_per_socket=1)
        for _ in range(3):
            parallel, report = parallel_atmult(at, at, topology=topology, config=CONFIG)
            np.testing.assert_allclose(
                parallel.to_dense(), sequential.to_dense(), atol=1e-10
            )
            assert parallel.to_csr().nnz == sequential.to_csr().nnz
            assert len(report.worker_busy_seconds) >= 1


class TestParallelReport:
    def test_worker_accounting(self, rng):
        a = heterogeneous_array(rng, 96, 96)
        at = build(a)
        _, report = parallel_atmult(
            at, at, topology=SystemTopology(sockets=2, cores_per_socket=1),
            config=CONFIG,
        )
        assert report.wall_seconds > 0
        assert report.products > 0
        assert sum(report.worker_busy_seconds.values()) > 0
        assert 0 < report.parallel_efficiency <= 1.0 + 1e-9

    def test_shared_conversion_cache(self, rng):
        """JIT conversions are counted once despite concurrent pairs."""
        dense_data = rng.uniform(0.5, 1.0, (64, 64))
        at = build(dense_data)  # dense tiles, but force via sparse wrapper
        a = as_csr(dense_data)
        _, report = parallel_atmult(
            a, a, topology=SystemTopology(sockets=4, cores_per_socket=1),
            config=CONFIG,
        )
        # One plain CSR operand tile converted at most once per operand.
        assert report.conversions <= 2


class TestInterruptTeardown:
    """Satellite contract: Ctrl-C flushes the checkpoint buffer."""

    def interrupt_after(self, monkeypatch, pairs_before_interrupt):
        from repro.engine.executor import PairComputer

        original = PairComputer.run_pair
        calls = {"count": 0}

        def interrupting(self, pair):
            calls["count"] += 1
            if calls["count"] > pairs_before_interrupt:
                raise KeyboardInterrupt
            return original(self, pair)

        monkeypatch.setattr(PairComputer, "run_pair", interrupting)

    def test_interrupt_flushes_buffered_checkpoint_records(
        self, rng, tmp_path, monkeypatch
    ):
        from repro.engine import MultiplyOptions
        from repro.resilience.checkpoint import CheckpointStore

        at = build(heterogeneous_array(rng, 96, 96))
        topology = SystemTopology(sockets=1, cores_per_socket=1)
        store = CheckpointStore(tmp_path / "ckpt")
        # A huge flush interval leaves every record buffered: only the
        # interrupt path can make them durable.
        options = MultiplyOptions(
            config=CONFIG, checkpoint=store, checkpoint_flush_pairs=10_000
        )
        self.interrupt_after(monkeypatch, 3)
        with pytest.raises(KeyboardInterrupt):
            parallel_atmult(at, at, topology=topology, options=options)
        monkeypatch.undo()

        resume_store = CheckpointStore(tmp_path / "ckpt", resume=True)
        resumed, report = parallel_atmult(
            at, at, topology=topology,
            options=MultiplyOptions(config=CONFIG, checkpoint=resume_store),
        )
        sequential, _ = atmult(at, at, config=CONFIG)
        np.testing.assert_array_equal(
            resumed.to_dense(), sequential.to_dense()
        )
        # The three pairs computed before Ctrl-C were flushed on the way
        # out and are restored instead of re-executed.
        assert report.failure.pairs_resumed == 3
