"""Tests for fixed-grid tiling (ablation levels 2-4)."""

import numpy as np

from repro import COOMatrix, StorageKind, fixed_grid_at_matrix

from ..conftest import heterogeneous_array, random_sparse_array


class TestFixedGrid:
    def test_reconstruction(self, rng, small_config):
        array = heterogeneous_array(rng, 70, 90)
        at = fixed_grid_at_matrix(COOMatrix.from_dense(array), small_config)
        np.testing.assert_allclose(at.to_dense(), array)

    def test_all_tiles_atomic_sized(self, rng, small_config):
        array = random_sparse_array(rng, 64, 64, 0.1)
        at = fixed_grid_at_matrix(COOMatrix.from_dense(array), small_config)
        b = small_config.b_atomic
        for tile in at.tiles:
            assert tile.rows <= b and tile.cols <= b
            assert tile.row0 % b == 0 and tile.col0 % b == 0

    def test_sparse_only_by_default(self, rng, small_config):
        array = heterogeneous_array(rng, 64, 64)
        at = fixed_grid_at_matrix(COOMatrix.from_dense(array), small_config)
        assert at.num_tiles(StorageKind.DENSE) == 0

    def test_mixed_marks_dense_cells(self, rng, small_config):
        array = heterogeneous_array(rng, 64, 64)
        at = fixed_grid_at_matrix(
            COOMatrix.from_dense(array), small_config, mixed=True
        )
        assert at.num_tiles(StorageKind.DENSE) > 0
        np.testing.assert_allclose(at.to_dense(), array)

    def test_empty_cells_have_no_tile(self, small_config):
        array = np.zeros((64, 64))
        array[0, 0] = 1.0
        at = fixed_grid_at_matrix(COOMatrix.from_dense(array), small_config)
        assert at.num_tiles() == 1

    def test_custom_block_size(self, rng, small_config):
        array = random_sparse_array(rng, 64, 64, 0.2)
        at = fixed_grid_at_matrix(
            COOMatrix.from_dense(array), small_config, block=32
        )
        for tile in at.tiles:
            assert tile.rows <= 32

    def test_hypersparse_explodes_into_many_tiles(self, rng, small_config):
        """The pathology the paper's adaptive tiles avoid (section II-B2)."""
        array = random_sparse_array(rng, 128, 128, 0.005)
        fixed = fixed_grid_at_matrix(COOMatrix.from_dense(array), small_config)
        from repro import build_at_matrix

        adaptive = build_at_matrix(COOMatrix.from_dense(array), small_config)
        assert fixed.num_tiles() > adaptive.num_tiles()
