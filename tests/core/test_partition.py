"""Tests for the recursive quadtree partitioner (paper Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, StorageKind
from repro.core.partition import QuadtreePartitioner, TileSpec
from repro.errors import PartitionError
from repro.zorder.zspace import ZSpace, block_counts

from ..conftest import heterogeneous_array, random_sparse_array


def partition_array(array, config, read_threshold=0.25):
    coo = COOMatrix.from_dense(array).z_ordered()
    zspace = ZSpace(array.shape[0], array.shape[1], config.b_atomic)
    counts = block_counts(coo.row_ids, coo.col_ids, zspace)
    partitioner = QuadtreePartitioner(config, read_threshold=read_threshold)
    return partitioner.partition(counts, zspace), zspace


class TestBasicPartitioning:
    def test_empty_matrix_produces_no_tiles(self, small_config):
        specs, _ = partition_array(np.zeros((64, 64)), small_config)
        assert specs == []

    def test_uniform_sparse_matrix_single_tile(self, small_config):
        """Hypersparse matrices melt into one sparse tile (section II-B2)."""
        rng = np.random.default_rng(1)
        array = random_sparse_array(rng, 64, 64, 0.001)
        specs, _ = partition_array(array, small_config)
        assert len(specs) == 1
        assert specs[0].kind is StorageKind.SPARSE
        assert specs[0].size_blocks == 4  # covers the whole 64/16 grid

    def test_dense_matrix_tiled_at_max_dense_size(self, small_config):
        array = np.ones((64, 64))
        specs, _ = partition_array(array, small_config)
        assert all(spec.kind is StorageKind.DENSE for spec in specs)
        max_dim = small_config.max_dense_tile_dim()
        for spec in specs:
            assert spec.size_blocks * small_config.b_atomic <= max(
                max_dim, small_config.b_atomic
            )

    def test_heterogeneous_matrix_mixed_tiles(self, small_config):
        rng = np.random.default_rng(2)
        array = heterogeneous_array(rng, 96, 96)
        specs, _ = partition_array(array, small_config)
        kinds = {spec.kind for spec in specs}
        assert kinds == {StorageKind.SPARSE, StorageKind.DENSE}

    def test_nnz_conserved(self, small_config):
        rng = np.random.default_rng(3)
        array = heterogeneous_array(rng, 80, 112)
        specs, _ = partition_array(array, small_config)
        assert sum(spec.nnz for spec in specs) == np.count_nonzero(array)


class TestInvariants:
    @staticmethod
    def check_invariants(specs, zspace, config):
        covered = np.zeros((zspace.grid_rows, zspace.grid_cols), dtype=int)
        for spec in specs:
            # Quadtree alignment: power-of-two size, aligned position.
            size = spec.size_blocks
            assert size & (size - 1) == 0
            assert spec.block_row0 % size == 0
            assert spec.block_col0 % size == 0
            row0, row1, col0, col1 = spec.element_bounds(zspace)
            assert row1 > row0 and col1 > col0
            br0, bc0 = spec.block_row0, spec.block_col0
            br1 = min(zspace.grid_rows, br0 + size)
            bc1 = min(zspace.grid_cols, bc0 + size)
            covered[br0:br1, bc0:bc1] += 1
        # Tiles must be disjoint in block space.
        assert covered.max() <= 1

    @given(st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_random_matrices_satisfy_invariants(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        rows = int(rng.integers(17, 120))
        cols = int(rng.integers(17, 120))
        array = heterogeneous_array(rng, rows, cols, background=0.05)
        specs, zspace = partition_array(array, config)
        self.check_invariants(specs, zspace, config)
        assert sum(s.nnz for s in specs) == np.count_nonzero(array)

    def test_sparse_tiles_respect_max_size(self, small_config):
        rng = np.random.default_rng(7)
        array = random_sparse_array(rng, 128, 128, 0.05)
        specs, zspace = partition_array(array, small_config)
        for spec in specs:
            if spec.kind is StorageKind.SPARSE and spec.nnz:
                row0, row1, col0, col1 = spec.element_bounds(zspace)
                density = spec.nnz / ((row1 - row0) * (col1 - col0))
                edge = spec.size_blocks * small_config.b_atomic
                # The melted edge obeys Eq. (2) at the tile's own density.
                assert edge <= max(
                    small_config.max_sparse_tile_dim(density), small_config.b_atomic
                )


class TestThresholdEffect:
    def test_lower_threshold_creates_more_dense_tiles(self, small_config):
        rng = np.random.default_rng(4)
        array = random_sparse_array(rng, 64, 64, 0.15)
        low, _ = partition_array(array, small_config, read_threshold=0.05)
        high, _ = partition_array(array, small_config, read_threshold=0.9)
        dense_low = sum(1 for s in low if s.kind is StorageKind.DENSE)
        dense_high = sum(1 for s in high if s.kind is StorageKind.DENSE)
        assert dense_low > dense_high

    def test_bad_zcounts_length_rejected(self, small_config):
        zspace = ZSpace(64, 64, small_config.b_atomic)
        partitioner = QuadtreePartitioner(small_config)
        with pytest.raises(PartitionError):
            partitioner.partition(np.zeros(3), zspace)


class TestPruning:
    def test_empty_quadrant_pruning_preserves_output(self, small_config):
        """Pruned recursion must match a dense scan of the same input."""
        rng = np.random.default_rng(11)
        # A huge mostly-empty matrix with one populated corner.
        array = np.zeros((512, 512))
        array[:32, :32] = heterogeneous_array(rng, 32, 32, background=0.2)
        specs, zspace = partition_array(array, small_config)
        assert sum(s.nnz for s in specs) == np.count_nonzero(array)
        TestInvariants.check_invariants(specs, zspace, small_config)

    def test_fully_empty_matrix_fast_path(self, small_config):
        specs, _ = partition_array(np.zeros((256, 256)), small_config)
        assert specs == []

    def test_partition_deterministic(self, small_config):
        rng = np.random.default_rng(12)
        array = heterogeneous_array(rng, 100, 90)
        first, _ = partition_array(array, small_config)
        second, _ = partition_array(array, small_config)
        assert first == second


class TestTileSpec:
    def test_element_bounds_clip_to_matrix(self):
        zspace = ZSpace(40, 24, 16)
        spec = TileSpec(2, 1, 1, 5, StorageKind.SPARSE)
        assert spec.element_bounds(zspace) == (32, 40, 16, 24)
