"""Tests for the dynamic optimizer's JIT conversions."""

import numpy as np

from repro import CostModel, StorageKind
from repro.core.optimizer import DynamicOptimizer
from repro.core.tile import Tile
from repro.formats.convert import dense_to_csr
from repro.formats.dense import DenseMatrix


def dense_tile(array: np.ndarray) -> Tile:
    return Tile(0, 0, array.shape[0], array.shape[1], StorageKind.DENSE, DenseMatrix(array))


def sparse_tile(array: np.ndarray) -> Tile:
    csr = dense_to_csr(DenseMatrix(array))
    return Tile(0, 0, array.shape[0], array.shape[1], StorageKind.SPARSE, csr)


def full_array(n: int) -> np.ndarray:
    return np.random.default_rng(0).uniform(0.5, 1.0, (n, n))


def hypersparse_array(n: int) -> np.ndarray:
    array = np.zeros((n, n))
    array[0, 0] = 1.0
    return array


class TestDisabledOptimizer:
    def test_passthrough(self):
        tile = sparse_tile(full_array(32))
        optimizer = DynamicOptimizer(CostModel(), enabled=False)
        a, b = optimizer.choose(tile, tile, StorageKind.DENSE, 32, 32, 32, 1.0)
        assert a is tile.data and b is tile.data
        assert optimizer.stats.decisions == 0


class TestConversions:
    def test_dense_data_in_sparse_tile_converted(self):
        tile = sparse_tile(full_array(64))
        optimizer = DynamicOptimizer(CostModel())
        a, b = optimizer.choose(tile, tile, StorageKind.DENSE, 64, 64, 64, 1.0)
        assert isinstance(a, DenseMatrix)
        assert optimizer.stats.conversions >= 1
        np.testing.assert_allclose(a.to_dense(), tile.data.to_dense())

    def test_conversion_cached_per_tile(self):
        tile = sparse_tile(full_array(64))
        optimizer = DynamicOptimizer(CostModel())
        a1, _ = optimizer.choose(tile, tile, StorageKind.DENSE, 64, 64, 64, 1.0)
        conversions_after_first = optimizer.stats.conversions
        a2, _ = optimizer.choose(tile, tile, StorageKind.DENSE, 64, 64, 64, 1.0)
        assert optimizer.stats.conversions == conversions_after_first
        assert a1 is a2

    def test_hypersparse_stays_sparse(self):
        tile = sparse_tile(hypersparse_array(64))
        optimizer = DynamicOptimizer(CostModel())
        a, b = optimizer.choose(tile, tile, StorageKind.SPARSE, 64, 64, 64, 0.001)
        assert a is tile.data and b is tile.data
        assert optimizer.stats.conversions == 0

    def test_decision_stats_recorded(self):
        tile = sparse_tile(hypersparse_array(16))
        optimizer = DynamicOptimizer(CostModel())
        optimizer.choose(tile, tile, StorageKind.SPARSE, 16, 16, 16, 0.1)
        assert optimizer.stats.decisions == 1
        assert optimizer.stats.decision_seconds >= 0.0

    def test_kernel_counter(self):
        optimizer = DynamicOptimizer(CostModel())
        optimizer.stats.record_kernel("spspsp_gemm")
        optimizer.stats.record_kernel("spspsp_gemm")
        assert optimizer.stats.kernel_counts == {"spspsp_gemm": 2}
