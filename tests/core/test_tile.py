"""Tests for the Tile dataclass."""

import numpy as np
import pytest

from repro import CSRMatrix, DenseMatrix, StorageKind
from repro.core.tile import Tile
from repro.errors import FormatError


def sparse_payload(rows, cols):
    return CSRMatrix.from_arrays_unsorted(rows, cols, [0], [0], [1.0])


class TestTileInvariants:
    def test_geometry(self):
        tile = Tile(16, 32, 8, 8, StorageKind.SPARSE, sparse_payload(8, 8))
        assert tile.extent == (16, 24, 32, 40)
        assert tile.row1 == 24 and tile.col1 == 40

    def test_payload_shape_must_match(self):
        with pytest.raises(FormatError):
            Tile(0, 0, 4, 4, StorageKind.SPARSE, sparse_payload(3, 4))

    def test_kind_must_match_payload(self):
        with pytest.raises(FormatError):
            Tile(0, 0, 4, 4, StorageKind.DENSE, sparse_payload(4, 4))

    def test_zero_extent_rejected(self):
        with pytest.raises(FormatError):
            Tile(0, 0, 0, 4, StorageKind.SPARSE, sparse_payload(1, 4))

    def test_overlaps(self):
        tile = Tile(4, 4, 4, 4, StorageKind.SPARSE, sparse_payload(4, 4))
        assert tile.overlaps(0, 5, 0, 5)
        assert tile.overlaps(7, 8, 7, 8)
        assert not tile.overlaps(0, 4, 0, 4)
        assert not tile.overlaps(8, 12, 4, 8)

    def test_statistics(self):
        dense = DenseMatrix(np.eye(4))
        tile = Tile(0, 0, 4, 4, StorageKind.DENSE, dense)
        assert tile.nnz == 4
        assert tile.density == pytest.approx(0.25)
        assert tile.memory_bytes() == 16 * 8

    def test_with_payload_swaps_kind(self):
        tile = Tile(0, 0, 4, 4, StorageKind.SPARSE, sparse_payload(4, 4))
        swapped = tile.with_payload(DenseMatrix(np.zeros((4, 4))))
        assert swapped.kind is StorageKind.DENSE
        assert swapped.extent == tile.extent
