"""Tests for the ATMULT operator (paper Alg. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, CostModel, SystemConfig, atmult, build_at_matrix, multiply
from repro.core.atmult import as_at_matrix, operand_density_map
from repro.errors import MemoryLimitError, ShapeError
from repro.kinds import StorageKind

from ..conftest import as_csr, as_dense, heterogeneous_array, random_sparse_array


@pytest.fixture
def workload(rng, small_config):
    a = heterogeneous_array(rng, 90, 70)
    b = heterogeneous_array(rng, 70, 85)
    at_a = build_at_matrix(COOMatrix.from_dense(a), small_config)
    at_b = build_at_matrix(COOMatrix.from_dense(b), small_config)
    return a, b, at_a, at_b


class TestCorrectness:
    def test_at_times_at(self, workload, small_config):
        a, b, at_a, at_b = workload
        result, report = atmult(at_a, at_b, config=small_config)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert report.total_seconds > 0

    def test_every_operand_combination(self, workload, small_config):
        a, b, at_a, at_b = workload
        operands_a = {"at": at_a, "csr": as_csr(a), "dense": as_dense(a)}
        operands_b = {"at": at_b, "csr": as_csr(b), "dense": as_dense(b)}
        for ka, op_a in operands_a.items():
            for kb, op_b in operands_b.items():
                result, _ = atmult(op_a, op_b, config=small_config)
                np.testing.assert_allclose(
                    result.to_dense(), a @ b, atol=1e-10,
                    err_msg=f"A={ka}, B={kb}",
                )

    def test_c_accumulation(self, workload, small_config):
        a, b, at_a, at_b = workload
        first, _ = atmult(at_a, at_b, config=small_config)
        second, _ = atmult(at_a, at_b, c=first, config=small_config)
        np.testing.assert_allclose(second.to_dense(), 2 * (a @ b), atol=1e-9)

    def test_c_shape_checked(self, workload, small_config):
        _, _, at_a, at_b = workload
        with pytest.raises(ShapeError):
            atmult(at_a, at_b, c=at_a, config=small_config)

    def test_inner_dims_checked(self, workload, small_config):
        _, _, at_a, _ = workload
        with pytest.raises(ShapeError):
            atmult(at_a, at_a, config=small_config)

    def test_empty_operand(self, small_config):
        empty = build_at_matrix(COOMatrix.empty(48, 48), small_config)
        result, _ = atmult(empty, empty, config=small_config)
        assert result.nnz == 0

    def test_multiply_wrapper(self, workload, small_config):
        a, b, at_a, at_b = workload
        result, report = multiply(at_a, at_b, config=small_config)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert report.total_seconds >= 0


class TestReport:
    def test_phases_accounted(self, workload, small_config):
        _, _, at_a, at_b = workload
        _, report = atmult(at_a, at_b, config=small_config)
        assert report.estimate_seconds > 0
        assert report.multiply_seconds > 0
        assert 0 <= report.estimate_fraction < 1
        assert 0 <= report.optimize_fraction < 1
        assert report.kernel_counts
        assert sum(report.kernel_counts.values()) == len(report.tasks)

    def test_estimation_disabled(self, workload, small_config):
        _, _, at_a, at_b = workload
        _, report = atmult(at_a, at_b, config=small_config, use_estimation=False)
        assert report.estimate_seconds == 0.0
        assert report.water_level is None
        # Without estimation every target tile is sparse.
        assert all(name.endswith("sp_gemm") for name in report.kernel_counts)

    def test_dynamic_conversion_disabled(self, workload, small_config):
        a, b, at_a, at_b = workload
        result, report = atmult(
            at_a, at_b, config=small_config, dynamic_conversion=False
        )
        assert report.conversions == 0
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)


class TestMemoryLimit:
    def test_generous_limit_keeps_result_exact(self, workload, small_config):
        a, b, at_a, at_b = workload
        unlimited, _ = atmult(at_a, at_b, config=small_config)
        limit = unlimited.memory_bytes() * 2.0
        result, report = atmult(
            at_a, at_b, config=small_config, memory_limit_bytes=limit
        )
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert report.water_level is not None

    def test_tight_limit_produces_sparser_layout(self, workload, small_config):
        a, b, at_a, at_b = workload
        unlimited, _ = atmult(at_a, at_b, config=small_config)
        # Force the all-sparse layout: limit just above the sparse size.
        sparse_size = unlimited.to_csr().memory_bytes()
        result, report = atmult(
            at_a, at_b, config=small_config, memory_limit_bytes=sparse_size * 1.05
        )
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert result.memory_bytes() <= sparse_size * 1.05
        assert report.write_threshold >= CostModel().write_threshold

    def test_impossible_limit_raises(self, workload, small_config):
        _, _, at_a, at_b = workload
        with pytest.raises(MemoryLimitError):
            atmult(at_a, at_b, config=small_config, memory_limit_bytes=16.0)

    def test_limit_is_a_hard_guarantee(self, workload, small_config):
        """Even when the density estimate is off, the repair pass holds
        the SLA exactly (not just in estimation)."""
        a, b, at_a, at_b = workload
        unlimited, _ = atmult(at_a, at_b, config=small_config)
        sparse_floor = unlimited.to_csr().memory_bytes()
        for slack in (1.01, 1.2, 1.5):
            limit = sparse_floor * slack
            result, _ = atmult(
                at_a, at_b, config=small_config, memory_limit_bytes=limit
            )
            assert result.memory_bytes() <= limit
            np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)

    def test_enforce_memory_limit_demotes_sparsest_first(self, workload, small_config):
        from repro.core.atmult import enforce_memory_limit

        _, _, at_a, at_b = workload
        result, _ = atmult(at_a, at_b, config=small_config)
        dense_tiles = [t for t in result.tiles if t.kind is StorageKind.DENSE]
        if not dense_tiles:
            pytest.skip("workload produced no dense result tiles")
        target = result.to_csr().memory_bytes() * 1.05
        demoted = enforce_memory_limit(result, target)
        assert demoted > 0
        assert result.memory_bytes() <= target


class TestOperandHelpers:
    def test_as_at_matrix_wraps_plain(self, rng, small_config):
        array = random_sparse_array(rng, 40, 40, 0.2)
        wrapped = as_at_matrix(as_csr(array), small_config)
        assert wrapped.num_tiles() == 1
        assert wrapped.tiles[0].kind is StorageKind.SPARSE
        np.testing.assert_allclose(wrapped.to_dense(), array)

    def test_as_at_matrix_identity_for_at(self, workload, small_config):
        _, _, at_a, _ = workload
        assert as_at_matrix(at_a, small_config) is at_a

    def test_operand_density_map_consistent(self, rng, small_config):
        array = random_sparse_array(rng, 48, 48, 0.2)
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        for operand in (at, as_csr(array), as_dense(array)):
            dm = operand_density_map(operand, small_config)
            assert dm.estimated_nnz() == pytest.approx(np.count_nonzero(array))


class TestMixedGranularity:
    @pytest.mark.parametrize("blocks", [(16, 32, 16), (32, 16, 16), (16, 16, 32)])
    def test_operands_with_different_b_atomic(self, rng, blocks):
        """Operands partitioned under different configs still multiply."""
        block_a, block_b, block_mult = blocks
        array = random_sparse_array(rng, 100, 100, 0.1)
        a = build_at_matrix(
            COOMatrix.from_dense(array),
            SystemConfig(llc_bytes=8 * 1024, b_atomic=block_a),
        )
        b = build_at_matrix(
            COOMatrix.from_dense(array),
            SystemConfig(llc_bytes=8 * 1024, b_atomic=block_b),
        )
        result, _ = atmult(
            a, b, config=SystemConfig(llc_bytes=8 * 1024, b_atomic=block_mult)
        )
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-9)


class TestAtmultProperties:
    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy_on_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        m = int(rng.integers(2, 80))
        k = int(rng.integers(2, 80))
        n = int(rng.integers(2, 80))
        a = random_sparse_array(rng, m, k, float(rng.uniform(0.0, 0.5)))
        b = random_sparse_array(rng, k, n, float(rng.uniform(0.0, 0.5)))
        at_a = build_at_matrix(COOMatrix.from_dense(a), config)
        at_b = build_at_matrix(COOMatrix.from_dense(b), config)
        result, _ = atmult(at_a, at_b, config=config)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)
