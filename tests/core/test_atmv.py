"""Tests for ATMV and power iteration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, atmv, atmv_transposed, build_at_matrix, power_iteration
from repro.errors import ShapeError

from ..conftest import heterogeneous_array, random_sparse_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


class TestAtmv:
    def test_matches_numpy(self, rng):
        array = heterogeneous_array(rng, 90, 70)
        x = rng.random(70)
        np.testing.assert_allclose(atmv(build(array), x), array @ x, atol=1e-10)

    def test_transposed_matches_numpy(self, rng):
        array = heterogeneous_array(rng, 90, 70)
        x = rng.random(90)
        np.testing.assert_allclose(
            atmv_transposed(build(array), x), array.T @ x, atol=1e-10
        )

    def test_empty_matrix(self):
        at = build(np.zeros((32, 24)))
        np.testing.assert_allclose(atmv(at, np.ones(24)), np.zeros(32))
        np.testing.assert_allclose(atmv_transposed(at, np.ones(32)), np.zeros(24))

    def test_length_checked(self, rng):
        at = build(random_sparse_array(rng, 16, 16, 0.3))
        with pytest.raises(ShapeError):
            atmv(at, np.ones(15))
        with pytest.raises(ShapeError):
            atmv_transposed(at, np.ones(15))

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_matches_numpy_property(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 80))
        cols = int(rng.integers(2, 80))
        array = random_sparse_array(rng, rows, cols, float(rng.uniform(0, 0.5)))
        x = rng.random(cols)
        np.testing.assert_allclose(atmv(build(array), x), array @ x, atol=1e-9)


class TestPowerIteration:
    def test_finds_dominant_eigenvalue(self, rng):
        # Symmetric matrix with a known dominant eigenvector structure.
        base = random_sparse_array(rng, 40, 40, 0.2)
        symmetric = (base + base.T) / 2
        at = build(symmetric)
        result = power_iteration(at, max_iterations=500, tolerance=1e-12)
        expected = np.max(np.abs(np.linalg.eigvalsh(symmetric)))
        assert result.converged
        assert abs(abs(result.eigenvalue) - expected) < 1e-6 * max(1.0, expected)

    def test_eigenvector_is_normalized_fixed_point(self, rng):
        base = random_sparse_array(rng, 30, 30, 0.3)
        symmetric = (base + base.T) / 2
        at = build(symmetric)
        result = power_iteration(at, max_iterations=500, tolerance=1e-12)
        assert np.linalg.norm(result.eigenvector) == pytest.approx(1.0)
        np.testing.assert_allclose(
            atmv(at, result.eigenvector),
            result.eigenvalue * result.eigenvector,
            atol=1e-4,
        )

    def test_zero_matrix_converges_immediately(self):
        at = build(np.zeros((8, 8)))
        result = power_iteration(at)
        assert result.converged
        assert result.eigenvalue == 0.0

    def test_requires_square_matrix(self, rng):
        at = build(random_sparse_array(rng, 8, 9, 0.5))
        with pytest.raises(ShapeError):
            power_iteration(at)

    def test_iteration_budget_respected(self, rng):
        base = random_sparse_array(rng, 20, 20, 0.4)
        at = build((base + base.T) / 2)
        result = power_iteration(at, max_iterations=2, tolerance=0.0)
        assert result.iterations == 2
        assert not result.converged
