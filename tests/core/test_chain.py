"""Tests for cost-based matrix chain multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, build_at_matrix, multiply_chain, plan_chain
from repro.errors import ShapeError

from ..conftest import as_csr, random_sparse_array


CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


class TestPlan:
    def test_single_operand(self, rng):
        a = random_sparse_array(rng, 10, 10, 0.3)
        plan = plan_chain([build(a)], config=CONFIG)
        assert plan.order == ()
        assert plan.cost == 0.0

    def test_two_operands_single_product(self, rng):
        a = random_sparse_array(rng, 10, 12, 0.3)
        b = random_sparse_array(rng, 12, 8, 0.3)
        plan = plan_chain([build(a), build(b)], config=CONFIG)
        assert plan.order == ((0, 0, 1),)
        assert plan.cost > 0

    def test_dimension_mismatch_rejected(self, rng):
        a = random_sparse_array(rng, 10, 12, 0.3)
        b = random_sparse_array(rng, 11, 8, 0.3)
        with pytest.raises(ShapeError):
            plan_chain([build(a), build(b)], config=CONFIG)

    def test_empty_chain_rejected(self):
        with pytest.raises(ShapeError):
            plan_chain([], config=CONFIG)

    def test_skewed_dimensions_prefer_cheap_order(self, rng):
        """Classic chain case: (A(BC)) vs ((AB)C) with a bottleneck dim."""
        # A: 64 x 4, B: 4 x 64, C: 64 x 4 -- (AB)C inflates a 64x64
        # intermediate, A(BC) keeps everything thin.
        a = random_sparse_array(rng, 64, 4, 0.8)
        b = random_sparse_array(rng, 4, 64, 0.8)
        c = random_sparse_array(rng, 64, 4, 0.8)
        plan = plan_chain([build(a), build(b), build(c)], config=CONFIG)
        assert plan.parenthesization() == "(A1 (A2 A3))"

    def test_parenthesization_names(self, rng):
        a = random_sparse_array(rng, 8, 8, 0.4)
        plan = plan_chain([build(a), build(a)], config=CONFIG)
        assert plan.parenthesization(["X", "Y"]) == "(X Y)"


class TestExecution:
    def test_three_matrix_chain_correct(self, rng):
        a = random_sparse_array(rng, 20, 30, 0.3)
        b = random_sparse_array(rng, 30, 10, 0.4)
        c = random_sparse_array(rng, 10, 25, 0.3)
        result, plan = multiply_chain(
            [build(a), build(b), build(c)], config=CONFIG
        )
        np.testing.assert_allclose(result.to_dense(), a @ b @ c, atol=1e-9)
        assert len(plan.order) == 2

    def test_plain_operands_accepted(self, rng):
        a = random_sparse_array(rng, 12, 12, 0.4)
        result, _ = multiply_chain([as_csr(a), as_csr(a), as_csr(a)], config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a @ a @ a, atol=1e-9)

    def test_single_operand_passthrough(self, rng):
        a = random_sparse_array(rng, 12, 12, 0.4)
        result, plan = multiply_chain([build(a)], config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a)
        assert plan.order == ()

    def test_memory_limit_propagated(self, rng):
        a = random_sparse_array(rng, 24, 24, 0.3)
        result, _ = multiply_chain(
            [build(a), build(a)], config=CONFIG, memory_limit_bytes=1e9
        )
        np.testing.assert_allclose(result.to_dense(), a @ a, atol=1e-9)


class TestChainProperties:
    @given(st.integers(0, 500), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_any_chain_matches_numpy(self, seed, length):
        rng = np.random.default_rng(seed)
        dims = [int(d) for d in rng.integers(3, 25, length + 1)]
        arrays = [
            random_sparse_array(rng, dims[i], dims[i + 1], 0.35)
            for i in range(length)
        ]
        result, _ = multiply_chain([build(x) for x in arrays], config=CONFIG)
        expected = arrays[0]
        for array in arrays[1:]:
            expected = expected @ array
        np.testing.assert_allclose(result.to_dense(), expected, atol=1e-8)
