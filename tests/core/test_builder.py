"""Tests for the COO -> AT Matrix builder pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, build_at_matrix
from repro.core.builder import ATMatrixBuilder

from ..conftest import heterogeneous_array, random_sparse_array


class TestBuild:
    def test_reconstruction_heterogeneous(self, rng, small_config):
        array = heterogeneous_array(rng, 100, 90)
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        np.testing.assert_allclose(at.to_dense(), array)

    def test_duplicate_coordinates_summed(self, small_config):
        coo = COOMatrix(32, 32, [3, 3], [4, 4], [1.0, 2.0])
        at = build_at_matrix(coo, small_config)
        assert at.to_dense()[3, 4] == 3.0
        assert at.nnz == 1

    def test_non_power_of_two_dims(self, rng, small_config):
        array = heterogeneous_array(rng, 77, 51)
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        np.testing.assert_allclose(at.to_dense(), array)

    def test_read_threshold_passed_through(self, rng, small_config):
        array = random_sparse_array(rng, 64, 64, 0.15)
        many_dense = build_at_matrix(
            COOMatrix.from_dense(array), small_config, read_threshold=0.05
        )
        few_dense = build_at_matrix(
            COOMatrix.from_dense(array), small_config, read_threshold=0.95
        )
        from repro import StorageKind

        assert many_dense.num_tiles(StorageKind.DENSE) > few_dense.num_tiles(
            StorageKind.DENSE
        )


class TestBuildReport:
    def test_components_timed(self, rng, small_config):
        array = heterogeneous_array(rng, 128, 128)
        builder = ATMatrixBuilder(small_config)
        at, report = builder.build_with_report(COOMatrix.from_dense(array))
        assert report.tiles == len(at.tiles)
        assert report.total_seconds > 0
        parts = report.as_dict()
        assert set(parts) == {
            "z_sort",
            "zblockcnts",
            "recursive_partitioning",
            "materialization",
        }
        assert report.total_seconds == pytest.approx(sum(parts.values()))

    def test_empty_input(self, small_config):
        builder = ATMatrixBuilder(small_config)
        at, report = builder.build_with_report(COOMatrix.empty(32, 32))
        assert report.tiles == 0
        assert at.num_tiles() == 0


class TestBuildProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_build_is_lossless(self, seed):
        rng = np.random.default_rng(seed)
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        rows = int(rng.integers(1, 150))
        cols = int(rng.integers(1, 150))
        density = float(rng.uniform(0, 0.4))
        array = random_sparse_array(rng, rows, cols, density)
        if rng.random() < 0.5 and rows > 20 and cols > 20:
            array[: rows // 2, : cols // 2] = rng.random((rows // 2, cols // 2))
        at = build_at_matrix(COOMatrix.from_dense(array), config)
        np.testing.assert_allclose(at.to_dense(), array)
        assert at.nnz == np.count_nonzero(array)
