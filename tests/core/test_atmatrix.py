"""Tests for the ATMatrix container."""

import numpy as np
import pytest

from repro import COOMatrix, StorageKind, build_at_matrix
from repro.core.atmatrix import ATMatrix
from repro.core.tile import Tile
from repro.errors import FormatError, ShapeError
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix

from ..conftest import heterogeneous_array


@pytest.fixture
def matrix(rng, small_config):
    array = heterogeneous_array(rng, 96, 80)
    at = build_at_matrix(COOMatrix.from_dense(array), small_config)
    return at, array


class TestContainer:
    def test_roundtrip(self, matrix):
        at, array = matrix
        np.testing.assert_allclose(at.to_dense(), array)
        np.testing.assert_allclose(at.to_csr().to_dense(), array)
        np.testing.assert_allclose(at.to_coo().to_dense(), array)

    def test_nnz_and_density(self, matrix):
        at, array = matrix
        assert at.nnz == np.count_nonzero(array)
        assert at.density == pytest.approx(np.count_nonzero(array) / array.size)

    def test_memory_is_sum_of_tiles(self, matrix):
        at, _ = matrix
        assert at.memory_bytes() == sum(t.memory_bytes() for t in at.tiles)

    def test_num_tiles_by_kind(self, matrix):
        at, _ = matrix
        dense = at.num_tiles(StorageKind.DENSE)
        sparse = at.num_tiles(StorageKind.SPARSE)
        assert dense + sparse == at.num_tiles()

    def test_empty_matrix(self, small_config):
        at = build_at_matrix(COOMatrix.empty(32, 32), small_config)
        assert at.num_tiles() == 0
        assert at.nnz == 0
        assert (at.to_dense() == 0).all()


class TestTileIndex:
    def test_tile_at_finds_covering_tile(self, matrix):
        at, array = matrix
        nz = np.argwhere(array)
        row, col = map(int, nz[0])
        tile = at.tile_at(row, col)
        assert tile is not None
        assert tile.row0 <= row < tile.row1
        assert tile.col0 <= col < tile.col1

    def test_tile_at_out_of_bounds(self, matrix):
        at, _ = matrix
        with pytest.raises(ShapeError):
            at.tile_at(96, 0)

    def test_tiles_overlapping_region(self, matrix):
        at, _ = matrix
        all_tiles = at.tiles_overlapping(0, at.rows, 0, at.cols)
        assert set(map(id, all_tiles)) == set(map(id, at.tiles))

    def test_tiles_overlapping_empty_region(self, matrix):
        at, _ = matrix
        assert at.tiles_overlapping(5, 5, 0, 10) == []

    def test_overlap_detection_rejected(self, small_config):
        payload = DenseMatrix(np.ones((16, 16)))
        t1 = Tile(0, 0, 16, 16, StorageKind.DENSE, payload)
        t2 = Tile(0, 0, 16, 16, StorageKind.DENSE, payload)
        at = ATMatrix(32, 32, small_config, [t1, t2])
        with pytest.raises(FormatError):
            at.tile_at(0, 0)


class TestCuts:
    def test_cuts_include_bounds(self, matrix):
        at, _ = matrix
        rows = at.row_cuts()
        cols = at.col_cuts()
        assert rows[0] == 0 and rows[-1] == at.rows
        assert cols[0] == 0 and cols[-1] == at.cols
        assert rows == sorted(set(rows))

    def test_cuts_align_with_tiles(self, matrix):
        at, _ = matrix
        rows = set(at.row_cuts())
        for tile in at.tiles:
            assert tile.row0 in rows

    def test_plain_single_tile_cuts(self, small_config):
        payload = CSRMatrix.from_arrays_unsorted(32, 32, [0], [0], [1.0])
        tile = Tile(0, 0, 32, 32, StorageKind.SPARSE, payload)
        at = ATMatrix(32, 32, small_config, [tile])
        assert at.row_cuts() == [0, 32]
        assert at.col_cuts() == [0, 32]


class TestMutation:
    def test_replace_tile(self, matrix):
        at, array = matrix
        old = at.tiles[0]
        new = old.with_payload(old.data)
        at.replace_tile(old, new)
        assert at.tiles[0] is new
        np.testing.assert_allclose(at.to_dense(), array)

    def test_replace_tile_must_match_region(self, matrix):
        at, _ = matrix
        old = at.tiles[0]
        moved = Tile(
            old.row0, old.col0, old.rows, old.cols, old.kind, old.data
        )
        moved.row0 += 16  # type: ignore[misc]
        with pytest.raises(FormatError):
            at.replace_tile(old, moved)

    def test_replace_unknown_tile(self, matrix, small_config):
        at, _ = matrix
        foreign = Tile(
            0, 0, at.tiles[0].rows, at.tiles[0].cols,
            at.tiles[0].kind, at.tiles[0].data,
        )
        with pytest.raises(FormatError):
            at.replace_tile(foreign, foreign)


class TestSubmatrix:
    def test_aligned_region(self, matrix):
        at, array = matrix
        b = at.zspace.b_atomic
        sub = at.submatrix(0, 3 * b, b, 4 * b)
        np.testing.assert_allclose(sub.to_dense(), array[: 3 * b, b : 4 * b])

    def test_unaligned_region_rebuilds(self, matrix):
        at, array = matrix
        sub = at.submatrix(5, 77, 3, 61)
        np.testing.assert_allclose(sub.to_dense(), array[5:77, 3:61])

    def test_full_region_shares_payloads(self, matrix):
        at, array = matrix
        sub = at.submatrix(0, at.rows, 0, at.cols)
        np.testing.assert_allclose(sub.to_dense(), array)
        shared = sum(
            1 for a, b in zip(at.tiles, sub.tiles, strict=True) if a.data is b.data
        )
        assert shared == len(at.tiles)

    def test_degenerate_region_rejected(self, matrix):
        at, _ = matrix
        with pytest.raises(ShapeError):
            at.submatrix(5, 5, 0, 10)

    def test_submatrix_multiplies(self, matrix, small_config):
        from repro import atmult

        at, array = matrix
        b = at.zspace.b_atomic
        sub = at.submatrix(0, 4 * b, 0, 4 * b)
        result, _ = atmult(sub, sub, config=small_config)
        expected = array[: 4 * b, : 4 * b] @ array[: 4 * b, : 4 * b]
        np.testing.assert_allclose(result.to_dense(), expected, atol=1e-9)


class TestIndexing:
    def test_element_access_matches_dense(self, matrix, rng):
        at, array = matrix
        for _ in range(50):
            row = int(rng.integers(0, at.rows))
            col = int(rng.integers(0, at.cols))
            assert at[row, col] == pytest.approx(array[row, col])

    def test_negative_indices(self, matrix):
        at, array = matrix
        assert at[-1, -1] == pytest.approx(array[-1, -1])

    def test_element_in_gap_is_zero(self, small_config):
        array = np.zeros((64, 64))
        array[0, 0] = 1.0
        at = build_at_matrix(COOMatrix.from_dense(array), small_config)
        assert at[40, 40] == 0.0

    def test_slice_pair_returns_submatrix(self, matrix):
        at, array = matrix
        sub = at[10:50, 5:60]
        np.testing.assert_allclose(sub.to_dense(), array[10:50, 5:60])

    def test_open_slices(self, matrix):
        at, array = matrix
        np.testing.assert_allclose(at[:, :].to_dense(), array)

    def test_invalid_keys_rejected(self, matrix):
        at, _ = matrix
        with pytest.raises(TypeError):
            at[3]
        with pytest.raises(TypeError):
            at[3, 0:2]
        with pytest.raises(TypeError):
            at[0:10:2, 0:10]


class TestLogging:
    def test_build_and_multiply_emit_debug_records(self, rng, small_config, caplog):
        import logging

        from repro import atmult

        array = heterogeneous_array(rng, 64, 64)
        with caplog.at_level(logging.DEBUG, logger="repro"):
            at = build_at_matrix(COOMatrix.from_dense(array), small_config)
            atmult(at, at, config=small_config)
        messages = [record.getMessage() for record in caplog.records]
        assert any("partitioned" in message for message in messages)
        assert any("atmult" in message for message in messages)


class TestAllclose:
    def test_against_dense_array(self, matrix):
        at, array = matrix
        assert at.allclose(array)
        assert not at.allclose(array + 1.0)

    def test_against_at_matrix(self, matrix, small_config):
        at, array = matrix
        other = build_at_matrix(COOMatrix.from_dense(array), small_config)
        assert at.allclose(other)

    def test_shape_mismatch_is_false(self, matrix):
        at, _ = matrix
        assert not at.allclose(np.zeros((2, 2)))


class TestDensityMap:
    def test_density_map_matches_content(self, matrix):
        at, array = matrix
        dm = at.density_map()
        assert dm.estimated_nnz() == pytest.approx(np.count_nonzero(array))
