"""Tests for element-wise AT Matrix arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, add, build_at_matrix, scale
from repro.errors import ShapeError

from ..conftest import heterogeneous_array, random_sparse_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


class TestAdd:
    def test_basic_sum(self, rng):
        a = heterogeneous_array(rng, 64, 48)
        b = random_sparse_array(rng, 64, 48, 0.1)
        result = add(build(a), build(b))
        np.testing.assert_allclose(result.to_dense(), a + b)

    def test_scaled_combination(self, rng):
        a = random_sparse_array(rng, 32, 32, 0.2)
        b = random_sparse_array(rng, 32, 32, 0.2)
        result = add(build(a), build(b), alpha=2.0, beta=-0.5)
        np.testing.assert_allclose(result.to_dense(), 2.0 * a - 0.5 * b)

    def test_cancellation_drops_entries(self, rng):
        a = random_sparse_array(rng, 24, 24, 0.3)
        result = add(build(a), build(a), alpha=1.0, beta=-1.0)
        assert result.nnz == 0

    def test_shape_mismatch_rejected(self, rng):
        a = random_sparse_array(rng, 8, 8, 0.5)
        b = random_sparse_array(rng, 8, 9, 0.5)
        with pytest.raises(ShapeError):
            add(build(a), build(b))

    def test_result_is_repartitioned(self, rng):
        """Sum of two sparse halves forming a dense block gets dense tiles."""
        from repro.kinds import StorageKind

        half_a = np.zeros((32, 32))
        half_b = np.zeros((32, 32))
        # A block populated at ~0.4 overall, split into two ~0.2 halves:
        # each half stays below the 0.25 read threshold, the sum exceeds it.
        populated = rng.random((16, 16)) < 0.4
        dense_block = np.where(populated, rng.uniform(0.1, 1.0, (16, 16)), 0.0)
        mask = rng.random((16, 16)) < 0.5
        half_a[:16, :16] = np.where(mask, dense_block, 0.0)
        half_b[:16, :16] = np.where(~mask, dense_block, 0.0)
        a, b = build(half_a), build(half_b)
        assert a.num_tiles(StorageKind.DENSE) == 0
        assert b.num_tiles(StorageKind.DENSE) == 0
        result = add(a, b)
        assert result.num_tiles(StorageKind.DENSE) > 0


class TestScale:
    def test_values_scaled(self, rng):
        a = heterogeneous_array(rng, 48, 48)
        result = scale(build(a), 2.5)
        np.testing.assert_allclose(result.to_dense(), 2.5 * a)

    def test_tiling_preserved(self, rng):
        a = heterogeneous_array(rng, 48, 48)
        at = build(a)
        scaled = scale(at, -1.0)
        assert len(scaled.tiles) == len(at.tiles)
        for original, result in zip(at.tiles, scaled.tiles, strict=True):
            assert result.extent == original.extent
            assert result.kind is original.kind

    def test_original_untouched(self, rng):
        a = heterogeneous_array(rng, 32, 32)
        at = build(a)
        scale(at, 0.0)
        np.testing.assert_allclose(at.to_dense(), a)


class TestArithmeticProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_add_commutes(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        a = random_sparse_array(rng, n, n, 0.3)
        b = random_sparse_array(rng, n, n, 0.3)
        ab = add(build(a), build(b))
        ba = add(build(b), build(a))
        np.testing.assert_allclose(ab.to_dense(), ba.to_dense())

    @given(st.integers(0, 500), st.floats(-3.0, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_scale_distributes_over_add(self, seed, factor):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 30))
        a = random_sparse_array(rng, n, n, 0.3)
        b = random_sparse_array(rng, n, n, 0.3)
        left = scale(add(build(a), build(b)), factor)
        right = add(scale(build(a), factor), scale(build(b), factor))
        np.testing.assert_allclose(
            left.to_dense(), right.to_dense(), atol=1e-10
        )
