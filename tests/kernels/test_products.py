"""Tests for the windowed tile-product primitives against numpy oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.kernels import Window
from repro.kernels import products

from ..conftest import as_csr, as_dense, random_sparse_array


def triples_to_dense(shape, triples):
    rows, cols, vals = triples
    out = np.zeros(shape)
    out[rows, cols] = vals
    return out


@pytest.fixture
def operands(rng):
    a = random_sparse_array(rng, 17, 23, 0.25)
    b = random_sparse_array(rng, 23, 13, 0.3)
    return a, b


class TestFullProducts:
    def test_spsp_triples(self, operands):
        a, b = operands
        wa, wb = Window.full(a.shape), Window.full(b.shape)
        got = triples_to_dense((17, 13), products.spsp_triples(as_csr(a), wa, as_csr(b), wb))
        np.testing.assert_allclose(got, a @ b)

    def test_spsp_dense(self, operands):
        a, b = operands
        got = products.spsp_dense(
            as_csr(a), Window.full(a.shape), as_csr(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)

    def test_spd_dense(self, operands):
        a, b = operands
        got = products.spd_dense(
            as_csr(a), Window.full(a.shape), as_dense(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)

    def test_dsp_dense(self, operands):
        a, b = operands
        got = products.dsp_dense(
            as_dense(a), Window.full(a.shape), as_csr(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)

    def test_dd_dense(self, operands):
        a, b = operands
        got = products.dd_dense(
            as_dense(a), Window.full(a.shape), as_dense(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)

    def test_triples_variants_match_dense(self, operands):
        a, b = operands
        wa, wb = Window.full(a.shape), Window.full(b.shape)
        for fn in (products.spd_triples, products.dsp_triples, products.dd_triples):
            a_op = as_csr(a) if fn is products.spd_triples else as_dense(a)
            b_op = as_csr(b) if fn is products.dsp_triples else as_dense(b)
            got = triples_to_dense((17, 13), fn(a_op, wa, b_op, wb))
            np.testing.assert_allclose(got, a @ b)

    def test_flops_counts_scalar_products(self, operands):
        a, b = operands
        wa, wb = Window.full(a.shape), Window.full(b.shape)
        flops = products.spsp_flops(as_csr(a), wa, as_csr(b), wb)
        expected = sum(
            int((a[:, k] != 0).sum()) * int((b[k] != 0).sum()) for k in range(23)
        )
        assert flops == expected


class TestWindowedProducts:
    def test_inner_mismatch_rejected(self, operands):
        a, b = operands
        with pytest.raises(ShapeError):
            products.spsp_triples(
                as_csr(a), Window(0, 2, 0, 5), as_csr(b), Window(0, 4, 0, 2)
            )

    def test_empty_window_product(self, operands):
        a, b = operands
        rows, cols, vals = products.spsp_triples(
            as_csr(a), Window(0, 0, 0, 0), as_csr(b), Window(0, 0, 0, 0)
        )
        assert len(vals) == 0

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_random_windows_match_numpy(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = rng.integers(2, 25, 3)
        a = random_sparse_array(rng, m, k, 0.35)
        b = random_sparse_array(rng, k, n, 0.35)
        r0, r1 = sorted(map(int, rng.integers(0, m + 1, 2)))
        k0, k1 = sorted(map(int, rng.integers(0, k + 1, 2)))
        c0, c1 = sorted(map(int, rng.integers(0, n + 1, 2)))
        wa = Window(r0, r1, k0, k1)
        wb = Window(k0, k1, c0, c1)
        expected = a[r0:r1, k0:k1] @ b[k0:k1, c0:c1]
        if expected.size == 0:
            return
        shape = (r1 - r0, c1 - c0)
        results = [
            triples_to_dense(shape, products.spsp_triples(as_csr(a), wa, as_csr(b), wb)),
            products.spd_dense(as_csr(a), wa, as_dense(b), wb),
            products.dsp_dense(as_dense(a), wa, as_csr(b), wb),
            products.dd_dense(as_dense(a), wa, as_dense(b), wb),
        ]
        for got in results:
            np.testing.assert_allclose(got, expected, atol=1e-12)


class TestChunking:
    def test_spsp_chunked_matches_unchunked(self, rng, monkeypatch):
        a = random_sparse_array(rng, 40, 40, 0.3)
        b = random_sparse_array(rng, 40, 40, 0.3)
        wa, wb = Window.full(a.shape), Window.full(b.shape)
        expected = a @ b
        monkeypatch.setattr(products, "EXPANSION_CHUNK", 64)
        got = triples_to_dense((40, 40), products.spsp_triples(as_csr(a), wa, as_csr(b), wb))
        np.testing.assert_allclose(got, expected)

    def test_spd_chunked(self, rng, monkeypatch):
        a = random_sparse_array(rng, 30, 30, 0.3)
        b = random_sparse_array(rng, 30, 20, 0.5)
        monkeypatch.setattr(products, "EXPANSION_CHUNK", 50)
        got = products.spd_dense(
            as_csr(a), Window.full(a.shape), as_dense(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)

    def test_dsp_chunked(self, rng, monkeypatch):
        a = random_sparse_array(rng, 20, 30, 0.5)
        b = random_sparse_array(rng, 30, 30, 0.3)
        monkeypatch.setattr(products, "EXPANSION_CHUNK", 50)
        got = products.dsp_dense(
            as_dense(a), Window.full(a.shape), as_csr(b), Window.full(b.shape)
        )
        np.testing.assert_allclose(got, a @ b)


class TestCompressTriples:
    def test_merges_and_sorts(self):
        rows = np.array([1, 0, 1])
        cols = np.array([1, 0, 1])
        vals = np.array([2.0, 1.0, 3.0])
        r, c, v = products.compress_triples(rows, cols, vals, 4)
        assert r.tolist() == [0, 1]
        assert c.tolist() == [0, 1]
        assert v.tolist() == [1.0, 5.0]

    def test_drops_exact_zero_sums(self):
        r, c, v = products.compress_triples(
            np.array([0, 0]), np.array([0, 0]), np.array([1.0, -1.0]), 2
        )
        assert len(v) == 0

    def test_empty_input(self):
        r, c, v = products.compress_triples(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0), 3
        )
        assert len(v) == 0
