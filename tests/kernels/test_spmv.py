"""Tests for the matrix-vector kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.kernels import Window
from repro.kernels.spmv import csr_spmv, csr_spmv_window, dense_spmv, dense_spmv_window

from ..conftest import as_csr, as_dense, random_sparse_array


class TestCsrSpmv:
    def test_matches_numpy(self, rng):
        array = random_sparse_array(rng, 25, 17, 0.25)
        x = rng.random(17)
        np.testing.assert_allclose(csr_spmv(as_csr(array), x), array @ x)

    def test_empty_matrix(self):
        from repro.formats.csr import CSRMatrix

        matrix = CSRMatrix.empty(4, 3)
        np.testing.assert_allclose(csr_spmv(matrix, np.ones(3)), np.zeros(4))

    def test_empty_rows_handled(self, rng):
        array = random_sparse_array(rng, 10, 10, 0.2)
        array[3] = 0.0
        array[7] = 0.0
        x = rng.random(10)
        np.testing.assert_allclose(csr_spmv(as_csr(array), x), array @ x)

    def test_length_mismatch(self, rng):
        array = random_sparse_array(rng, 5, 5, 0.5)
        with pytest.raises(ShapeError):
            csr_spmv(as_csr(array), np.ones(4))


class TestWindowedSpmv:
    def test_csr_window_matches_slice(self, rng):
        array = random_sparse_array(rng, 30, 30, 0.2)
        window = Window(5, 20, 8, 25)
        x = rng.random(17)
        got = csr_spmv_window(as_csr(array), window, x)
        np.testing.assert_allclose(got, array[5:20, 8:25] @ x)

    def test_dense_window_matches_slice(self, rng):
        array = random_sparse_array(rng, 20, 20, 0.5)
        window = Window(2, 12, 3, 15)
        x = rng.random(12)
        got = dense_spmv_window(as_dense(array), window, x)
        np.testing.assert_allclose(got, array[2:12, 3:15] @ x)

    def test_empty_window_region(self, rng):
        array = np.zeros((10, 10))
        array[0, 0] = 1.0
        got = csr_spmv_window(as_csr(array), Window(5, 10, 5, 10), np.ones(5))
        np.testing.assert_allclose(got, np.zeros(5))

    def test_window_length_mismatch(self, rng):
        array = random_sparse_array(rng, 8, 8, 0.5)
        with pytest.raises(ShapeError):
            csr_spmv_window(as_csr(array), Window(0, 4, 0, 4), np.ones(5))


class TestDenseSpmv:
    def test_matches_numpy(self, rng):
        array = rng.random((12, 9))
        x = rng.random(9)
        np.testing.assert_allclose(dense_spmv(as_dense(array), x), array @ x)

    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            dense_spmv(as_dense(rng.random((3, 3))), np.ones(2))


class TestSpmvProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_all_kernels_agree(self, seed):
        rng = np.random.default_rng(seed)
        rows, cols = (int(v) for v in rng.integers(1, 40, 2))
        array = random_sparse_array(rng, rows, cols, 0.3)
        x = rng.random(cols)
        expected = array @ x
        np.testing.assert_allclose(csr_spmv(as_csr(array), x), expected, atol=1e-12)
        np.testing.assert_allclose(dense_spmv(as_dense(array), x), expected, atol=1e-12)
        full = Window.full(array.shape)
        np.testing.assert_allclose(
            csr_spmv_window(as_csr(array), full, x), expected, atol=1e-12
        )
