"""Tests for reference windows."""

import pytest

from repro.errors import ShapeError
from repro.kernels import Window


class TestWindow:
    def test_geometry(self):
        w = Window(1, 4, 2, 7)
        assert w.rows == 3
        assert w.cols == 5
        assert w.area == 15
        assert not w.is_empty()

    def test_empty_window(self):
        assert Window(2, 2, 0, 5).is_empty()
        assert Window(0, 5, 3, 3).is_empty()

    def test_degenerate_rejected(self):
        with pytest.raises(ShapeError):
            Window(3, 1, 0, 0)
        with pytest.raises(ShapeError):
            Window(-1, 1, 0, 0)

    def test_full(self):
        w = Window.full((4, 6))
        assert w.covers((4, 6))
        assert not w.covers((4, 7))

    def test_validate_within(self):
        w = Window(0, 3, 0, 3)
        w.validate_within((3, 3))
        with pytest.raises(ShapeError):
            w.validate_within((2, 3))

    def test_shifted(self):
        w = Window(1, 2, 3, 4).shifted(10, 20)
        assert (w.row0, w.row1, w.col0, w.col1) == (11, 12, 23, 24)

    def test_intersect(self):
        a = Window(0, 5, 0, 5)
        b = Window(3, 8, 2, 4)
        i = Window.intersect(a, b)
        assert (i.row0, i.row1, i.col0, i.col1) == (3, 5, 2, 4)

    def test_intersect_disjoint_is_empty(self):
        a = Window(0, 2, 0, 2)
        b = Window(5, 8, 5, 8)
        assert Window.intersect(a, b).is_empty()
