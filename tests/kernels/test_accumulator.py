"""Tests for the dense and sparse output accumulators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import DenseAccumulator, SparseAccumulator, make_accumulator
from repro.kinds import StorageKind


class TestDenseAccumulator:
    def test_add_dense_at_offset(self):
        acc = DenseAccumulator(4, 4)
        acc.add_dense(1, 2, np.ones((2, 2)))
        out = acc.finalize().to_dense()
        assert out[1, 2] == 1.0 and out[2, 3] == 1.0
        assert out.sum() == 4.0

    def test_add_triples_accumulates_duplicates(self):
        acc = DenseAccumulator(2, 2)
        acc.add_triples(0, 0, np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0]))
        assert acc.finalize().to_dense()[0, 1] == 5.0

    def test_writes_counted(self):
        acc = DenseAccumulator(3, 3)
        acc.add_dense(0, 0, np.ones((2, 2)))
        assert acc.writes == 4

    def test_rejects_bad_dims(self):
        with pytest.raises(ShapeError):
            DenseAccumulator(0, 2)


class TestSparseAccumulator:
    def test_merges_runs(self):
        acc = SparseAccumulator(3, 3)
        acc.add_triples(0, 0, np.array([0]), np.array([0]), np.array([1.0]))
        acc.add_triples(0, 0, np.array([0]), np.array([0]), np.array([2.0]))
        result = acc.finalize()
        assert result.nnz == 1
        assert result.to_dense()[0, 0] == 3.0

    def test_offsets_applied(self):
        acc = SparseAccumulator(4, 4)
        acc.add_triples(2, 2, np.array([1]), np.array([1]), np.array([5.0]))
        assert acc.finalize().to_dense()[3, 3] == 5.0

    def test_add_dense_extracts_nonzeros(self):
        acc = SparseAccumulator(2, 2)
        acc.add_dense(0, 0, np.array([[0.0, 1.5], [0.0, 0.0]]))
        result = acc.finalize()
        assert result.nnz == 1
        assert result.to_dense()[0, 1] == 1.5

    def test_empty_finalize(self):
        acc = SparseAccumulator(2, 3)
        result = acc.finalize()
        assert result.nnz == 0
        assert result.shape == (2, 3)

    def test_pending_counts_buffered(self):
        acc = SparseAccumulator(4, 4)
        acc.add_triples(0, 0, np.array([0, 1]), np.array([0, 1]), np.array([1.0, 1.0]))
        assert acc.pending == 2

    def test_cancellation_dropped(self):
        acc = SparseAccumulator(2, 2)
        acc.add_triples(0, 0, np.array([0]), np.array([0]), np.array([1.0]))
        acc.add_triples(0, 0, np.array([0]), np.array([0]), np.array([-1.0]))
        assert acc.finalize().nnz == 0


class TestFactory:
    def test_kind_dispatch(self):
        assert isinstance(make_accumulator(StorageKind.DENSE, 2, 2), DenseAccumulator)
        assert isinstance(make_accumulator(StorageKind.SPARSE, 2, 2), SparseAccumulator)

    def test_kind_attribute(self):
        assert make_accumulator(StorageKind.DENSE, 2, 2).kind is StorageKind.DENSE
        assert make_accumulator(StorageKind.SPARSE, 2, 2).kind is StorageKind.SPARSE
