"""Tests for the 8 whole-matrix baseline gemm operators (scipy oracle)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

import repro.kernels.gemm as gemm
from repro.errors import ShapeError
from repro.kinds import StorageKind, kernel_name

from ..conftest import as_csr, as_dense, random_sparse_array

ALL_GEMMS = [
    ("spspsp_gemm", "csr", "csr"),
    ("spspd_gemm", "csr", "csr"),
    ("spdsp_gemm", "csr", "dense"),
    ("spdd_gemm", "csr", "dense"),
    ("dspsp_gemm", "dense", "csr"),
    ("dspd_gemm", "dense", "csr"),
    ("ddsp_gemm", "dense", "dense"),
    ("ddd_gemm", "dense", "dense"),
]


def wrap(array, how):
    return as_csr(array) if how == "csr" else as_dense(array)


class TestAllKernelsAgainstScipy:
    @pytest.mark.parametrize("name,a_kind,b_kind", ALL_GEMMS)
    def test_matches_scipy(self, name, a_kind, b_kind, rng):
        a = random_sparse_array(rng, 31, 27, 0.2)
        b = random_sparse_array(rng, 27, 19, 0.25)
        expected = (sp.csr_matrix(a) @ sp.csr_matrix(b)).toarray()
        got = gemm.by_name(name)(wrap(a, a_kind), wrap(b, b_kind))
        np.testing.assert_allclose(got.to_dense(), expected, atol=1e-12)

    @pytest.mark.parametrize("name,a_kind,b_kind", ALL_GEMMS)
    def test_empty_operands(self, name, a_kind, b_kind):
        a = np.zeros((5, 4))
        b = np.zeros((4, 6))
        got = gemm.by_name(name)(wrap(a, a_kind), wrap(b, b_kind))
        assert got.shape == (5, 6)
        assert got.nnz == 0

    def test_inner_dimension_checked(self, rng):
        a = random_sparse_array(rng, 4, 5, 0.5)
        b = random_sparse_array(rng, 6, 3, 0.5)
        with pytest.raises(ShapeError):
            gemm.spspsp_gemm(as_csr(a), as_csr(b))

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            gemm.by_name("nope_gemm")

    def test_generic_gemm_dispatch(self, rng):
        a = random_sparse_array(rng, 6, 6, 0.4)
        got = gemm.multiply_plain(as_csr(a), as_dense(a), StorageKind.DENSE)
        np.testing.assert_allclose(got.to_dense(), a @ a, atol=1e-12)


class TestOutputRepresentations:
    def test_sparse_output_is_csr(self, rng):
        a = random_sparse_array(rng, 8, 8, 0.3)
        out = gemm.spspsp_gemm(as_csr(a), as_csr(a))
        assert out.memory_bytes() == out.nnz * 16

    def test_dense_output_is_array(self, rng):
        a = random_sparse_array(rng, 8, 8, 0.3)
        out = gemm.spspd_gemm(as_csr(a), as_csr(a))
        assert out.memory_bytes() == 8 * 8 * 8

    def test_kernel_name_convention(self):
        assert kernel_name(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.DENSE) == "spspd_gemm"
        assert kernel_name(StorageKind.DENSE, StorageKind.DENSE, StorageKind.SPARSE) == "ddsp_gemm"


class TestGemmProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_all_kernels_agree(self, seed):
        """All 8 kernels are different evaluations of the same product."""
        rng = np.random.default_rng(seed)
        m, k, n = rng.integers(1, 20, 3)
        a = random_sparse_array(rng, m, k, 0.3)
        b = random_sparse_array(rng, k, n, 0.3)
        reference = gemm.ddd_gemm(as_dense(a), as_dense(b)).to_dense()
        for name, a_kind, b_kind in ALL_GEMMS:
            got = gemm.by_name(name)(wrap(a, a_kind), wrap(b, b_kind))
            np.testing.assert_allclose(got.to_dense(), reference, atol=1e-12)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_identity_multiplication(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 15))
        a = random_sparse_array(rng, n, n, 0.4)
        identity = np.eye(n)
        np.testing.assert_allclose(
            gemm.spspsp_gemm(as_csr(a), as_csr(identity)).to_dense(), a
        )
        np.testing.assert_allclose(
            gemm.spspsp_gemm(as_csr(identity), as_csr(a)).to_dense(), a
        )
