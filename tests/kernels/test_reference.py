"""Tests for the reference Gustavson kernels and the plug-in mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.kernels.gemm import spspsp_gemm
from repro.kernels.reference import gustavson_spsp, use_reference_kernels

from ..conftest import as_csr, heterogeneous_array, random_sparse_array


class TestGustavsonReference:
    def test_matches_numpy(self, rng):
        a = random_sparse_array(rng, 15, 20, 0.3)
        b = random_sparse_array(rng, 20, 12, 0.3)
        got = gustavson_spsp(as_csr(a), as_csr(b))
        np.testing.assert_allclose(got.to_dense(), a @ b, atol=1e-12)

    def test_matches_vectorized_kernel(self, rng):
        a = random_sparse_array(rng, 18, 18, 0.25)
        reference = gustavson_spsp(as_csr(a), as_csr(a))
        vectorized = spspsp_gemm(as_csr(a), as_csr(a))
        np.testing.assert_allclose(
            reference.to_dense(), vectorized.to_dense(), atol=1e-12
        )

    def test_empty_operands(self):
        from repro.formats.csr import CSRMatrix

        empty = CSRMatrix.empty(4, 4)
        assert gustavson_spsp(empty, empty).nnz == 0

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_reference_is_oracle(self, seed):
        """The two independent implementations must agree exactly in
        structure (same nnz) and numerically."""
        rng = np.random.default_rng(seed)
        m, k, n = (int(v) for v in rng.integers(1, 15, 3))
        a = random_sparse_array(rng, m, k, 0.4)
        b = random_sparse_array(rng, k, n, 0.4)
        reference = gustavson_spsp(as_csr(a), as_csr(b))
        vectorized = spspsp_gemm(as_csr(a), as_csr(b))
        assert reference.nnz == vectorized.nnz
        np.testing.assert_allclose(
            reference.to_dense(), vectorized.to_dense(), atol=1e-12
        )


class TestPlugIn:
    def test_atmult_runs_on_reference_kernels(self, rng):
        """The paper's plug-in claim: swap kernels, keep the optimizer."""
        config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
        array = heterogeneous_array(rng, 64, 64)
        at = build_at_matrix(COOMatrix.from_dense(array), config)
        baseline, _ = atmult(at, at, config=config)
        with use_reference_kernels():
            plugged, report = atmult(at, at, config=config)
        np.testing.assert_allclose(
            plugged.to_dense(), baseline.to_dense(), atol=1e-10
        )
        assert report.kernel_counts  # products actually ran

    def test_registry_restored_after_context(self, rng):
        from repro.kernels.registry import get_kernel
        from repro.kinds import StorageKind

        before = get_kernel(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE)
        with use_reference_kernels():
            inside = get_kernel(
                StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE
            )
            assert inside is not before
        after = get_kernel(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE)
        assert after is before

    def test_registry_restored_on_error(self):
        from repro.kernels.registry import get_kernel
        from repro.kinds import StorageKind

        before = get_kernel(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE)
        with pytest.raises(RuntimeError), use_reference_kernels():
            raise RuntimeError("boom")
        assert (
            get_kernel(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE)
            is before
        )
