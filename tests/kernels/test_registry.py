"""Tests for the kernel registry and dispatch."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import (
    Window,
    available_kernels,
    get_kernel,
    kind_of,
    make_accumulator,
    register_kernel,
    run_tile_product,
)
from repro.kernels.registry import _install_builtins
from repro.kinds import StorageKind

from ..conftest import as_csr, as_dense, random_sparse_array


class TestKindOf:
    def test_kinds(self, rng):
        a = random_sparse_array(rng, 3, 3, 0.5)
        assert kind_of(as_csr(a)) is StorageKind.SPARSE
        assert kind_of(as_dense(a)) is StorageKind.DENSE

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            kind_of(np.zeros((2, 2)))


class TestRegistry:
    def test_all_eight_registered(self):
        names = available_kernels()
        assert len(names) == 8
        assert "spspsp_gemm" in names and "ddd_gemm" in names

    def test_replace_and_restore(self, rng):
        calls = []

        def spy(a, wa, b, wb, out, row0, col0):
            calls.append((row0, col0))

        register_kernel(StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE, spy)
        try:
            a = as_csr(random_sparse_array(rng, 4, 4, 0.5))
            out = make_accumulator(StorageKind.SPARSE, 4, 4)
            run_tile_product(a, Window.full((4, 4)), a, Window.full((4, 4)), out)
            assert calls == [(0, 0)]
        finally:
            _install_builtins()

    def test_get_kernel_returns_callable(self):
        kernel = get_kernel(StorageKind.DENSE, StorageKind.DENSE, StorageKind.DENSE)
        assert callable(kernel)


class TestRunTileProduct:
    def test_accumulates_at_offset(self, rng):
        a = random_sparse_array(rng, 4, 4, 0.6)
        out = make_accumulator(StorageKind.DENSE, 8, 8)
        run_tile_product(
            as_csr(a), Window.full((4, 4)), as_csr(a), Window.full((4, 4)), out, 4, 4
        )
        result = out.finalize().to_dense()
        np.testing.assert_allclose(result[4:, 4:], a @ a, atol=1e-12)
        assert (result[:4, :4] == 0).all()

    def test_mismatched_inner_rejected(self, rng):
        a = as_csr(random_sparse_array(rng, 4, 4, 0.5))
        out = make_accumulator(StorageKind.SPARSE, 4, 4)
        with pytest.raises(ShapeError):
            run_tile_product(a, Window(0, 4, 0, 3), a, Window(0, 2, 0, 4), out)

    def test_empty_window_is_noop(self, rng):
        a = as_csr(random_sparse_array(rng, 4, 4, 0.5))
        out = make_accumulator(StorageKind.SPARSE, 4, 4)
        run_tile_product(a, Window(0, 0, 0, 0), a, Window(0, 0, 0, 4), out)
        assert out.finalize().nnz == 0

    def test_mixed_kind_dispatch(self, rng):
        a = random_sparse_array(rng, 5, 6, 0.4)
        b = random_sparse_array(rng, 6, 4, 0.4)
        for a_op in (as_csr(a), as_dense(a)):
            for b_op in (as_csr(b), as_dense(b)):
                for c_kind in StorageKind:
                    out = make_accumulator(c_kind, 5, 4)
                    run_tile_product(
                        a_op, Window.full((5, 6)), b_op, Window.full((6, 4)), out
                    )
                    np.testing.assert_allclose(
                        out.finalize().to_dense(), a @ b, atol=1e-12
                    )
