"""Tests for the benchmark harness helpers and the config module."""

import math

import pytest

from repro import DEFAULT_CONFIG, SystemConfig
from repro.bench import (
    format_relative_table,
    format_series,
    format_table,
    run_algorithms,
    time_call,
)
from repro.errors import ConfigError


class TestSystemConfig:
    def test_default_b_atomic_derived_from_llc(self):
        assert DEFAULT_CONFIG.b_atomic == 128
        assert DEFAULT_CONFIG.k_atomic == 7

    def test_paper_llc_yields_paper_b_atomic(self):
        config = SystemConfig(llc_bytes=24 * 1024 * 1024)
        assert config.b_atomic == 1024

    def test_max_dense_tile_dim_formula(self):
        config = SystemConfig(llc_bytes=24 * 1024 * 1024)
        expected = int(math.sqrt(24 * 1024 * 1024 / (3 * 8)))
        assert config.max_dense_tile_dim() == expected

    def test_max_sparse_tile_dim_bounds(self):
        config = SystemConfig(llc_bytes=24 * 1024 * 1024)
        # The dimension bound from Eq. (2): LLC / (beta * S_d).
        dim_bound = 24 * 1024 * 1024 // (3 * 8)
        assert config.max_sparse_tile_dim(1e-9) == dim_bound
        # Higher density shrinks the memory bound below the dim bound.
        assert config.max_sparse_tile_dim(0.5) < dim_bound

    def test_sparse_dim_monotone_in_density(self):
        config = SystemConfig()
        dims = [config.max_sparse_tile_dim(rho) for rho in (0.001, 0.01, 0.1, 1.0)]
        assert dims == sorted(dims, reverse=True)

    def test_density_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig().max_sparse_tile_dim(1.5)

    def test_b_atomic_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            SystemConfig(b_atomic=100)

    def test_with_llc_rederives(self):
        config = SystemConfig().with_llc(24 * 1024 * 1024)
        assert config.b_atomic == 1024

    @pytest.mark.parametrize(
        "kwargs", [{"llc_bytes": 0}, {"alpha": 0}, {"beta": 0}, {"dense_element_bytes": 0}]
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            SystemConfig(**kwargs)


class TestRunner:
    def test_time_call(self):
        seconds, value = time_call(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_run_algorithms(self):
        results = run_algorithms(
            {"a": lambda: [1, 2], "b": lambda: [1]},
            output_bytes=len,
        )
        assert results["a"].output_bytes == 2
        assert results["b"].output_bytes == 1
        assert results["a"].relative_to(1.0) > 0


class TestReportFormatting:
    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], ["ab", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[1] and "y" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_format_relative_table_baseline_is_one(self):
        series = {"base": {"w": 2.0}, "fast": {"w": 1.0}}
        text = format_relative_table(["w"], series, baseline="base")
        assert "1.00x" in text
        assert "2.00x" in text

    def test_format_relative_table_missing_cells(self):
        series = {"base": {"w": 2.0}, "fast": {}}
        text = format_relative_table(["w"], series, baseline="base")
        assert "-" in text

    def test_format_series(self):
        text = format_series({"G1": 1.5, "G2": 2.0}, unit="x", title="speedups")
        assert text.splitlines()[0] == "speedups"
        assert "G1: 1.5 x" in text
