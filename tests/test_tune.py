"""Tests for the empirical autotuner."""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig
from repro.errors import ConfigError
from repro.tune import autotune

from .conftest import heterogeneous_array


BASE = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


class TestAutotune:
    def test_runs_full_grid(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 96, 96))
        result = autotune(
            staged,
            BASE,
            b_atomic_candidates=[8, 16],
            read_threshold_candidates=[0.1, 0.5],
        )
        assert len(result.trials) == 4
        assert result.best in result.trials
        assert result.config.b_atomic == result.best.b_atomic

    def test_best_has_minimal_multiply_time(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 80, 80))
        result = autotune(
            staged, BASE, b_atomic_candidates=[8, 16, 32],
            read_threshold_candidates=[0.25],
        )
        assert result.best.multiply_seconds == min(
            trial.multiply_seconds for trial in result.trials
        )

    def test_include_partitioning_changes_ranking_key(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 64, 64))
        result = autotune(
            staged, BASE, b_atomic_candidates=[8, 16],
            read_threshold_candidates=[0.25], include_partitioning=True,
        )
        assert result.best.total_seconds == min(
            trial.total_seconds for trial in result.trials
        )

    def test_default_candidates_bracket_heuristic(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 64, 64))
        result = autotune(staged, BASE, read_threshold_candidates=[0.25])
        tried = {trial.b_atomic for trial in result.trials}
        assert tried == {8, 16, 32}

    def test_probe_dim(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 128, 128))
        result = autotune(
            staged, BASE, probe_dim=48,
            b_atomic_candidates=[16], read_threshold_candidates=[0.25],
        )
        assert len(result.trials) == 1

    def test_empty_probe_falls_back_to_full(self, rng):
        array = np.zeros((128, 128))
        array[100:, 100:] = heterogeneous_array(rng, 28, 28)
        staged = COOMatrix.from_dense(array)
        result = autotune(
            staged, BASE, probe_dim=32,  # leading block is empty
            b_atomic_candidates=[16], read_threshold_candidates=[0.25],
        )
        assert result.best.tiles > 0

    def test_invalid_candidate_rejected(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 32, 32))
        with pytest.raises(ConfigError):
            autotune(staged, BASE, b_atomic_candidates=[12])

    def test_summary_lists_all_trials(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 64, 64))
        result = autotune(
            staged, BASE, b_atomic_candidates=[8, 16],
            read_threshold_candidates=[0.25],
        )
        text = result.summary()
        assert text.count("b_atomic=") == 2
        assert "<= best" in text
