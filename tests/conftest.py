"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, _deprecations
from repro.formats import coo_to_csr, coo_to_dense


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """Warn-once sites are process-global; isolate them per test."""
    _deprecations.reset()
    yield
    _deprecations.reset()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny config (b_atomic=16) so partitioning happens on small inputs."""
    return SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


@pytest.fixture
def medium_config() -> SystemConfig:
    """The scaled benchmark config (384 KiB LLC, b_atomic=128)."""
    return SystemConfig()


def random_sparse_array(
    rng: np.random.Generator, rows: int, cols: int, density: float
) -> np.ndarray:
    """A dense numpy array populated at roughly the given density."""
    mask = rng.random((rows, cols)) < density
    values = rng.uniform(0.1, 1.0, size=(rows, cols))
    return np.where(mask, values, 0.0)


def heterogeneous_array(
    rng: np.random.Generator, rows: int, cols: int, *, background: float = 0.01
) -> np.ndarray:
    """An array with one dense block over a sparse background."""
    array = random_sparse_array(rng, rows, cols, background)
    block = min(rows, cols) // 3
    if block:
        array[:block, :block] = rng.uniform(0.1, 1.0, size=(block, block))
    return array


def staged(array: np.ndarray) -> COOMatrix:
    return COOMatrix.from_dense(array)


def as_csr(array: np.ndarray):
    return coo_to_csr(COOMatrix.from_dense(array))


def as_dense(array: np.ndarray):
    return coo_to_dense(COOMatrix.from_dense(array))


def assert_matrix_equals(result, expected: np.ndarray, *, atol: float = 1e-10) -> None:
    """Compare any library matrix object against a dense numpy oracle."""
    np.testing.assert_allclose(result.to_dense(), expected, atol=atol)
