"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

# The lock-order sanitizer must patch the threading factories BEFORE
# ``repro`` is imported: module-level locks (``_deprecations._lock``)
# are created at import time.  Off by default; REPRO_SANITIZE=1 enables
# it (see docs/STATIC_ANALYSIS.md).
_SANITIZE = os.environ.get("REPRO_SANITIZE") == "1"
if _SANITIZE:
    _repo_root = str(Path(__file__).resolve().parent.parent)
    if _repo_root not in sys.path:
        sys.path.insert(0, _repo_root)
    from tools.repro_check import sanitize as _sanitize

    _sanitize.install()

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro import COOMatrix, SystemConfig, _deprecations  # noqa: E402
from repro.formats import coo_to_csr, coo_to_dense  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _lock_order_sanitizer():
    """Cross-check observed lock orders against RPR009's static graph.

    Active only under ``REPRO_SANITIZE=1``.  Raises at session teardown
    if any lock-order inversion (a latent deadlock) was observed, and
    prints a one-line summary either way.
    """
    yield
    if not _SANITIZE:
        return
    report = _sanitize.verify()
    print(f"\n{report.summary()}")


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """Warn-once sites are process-global; isolate them per test."""
    _deprecations.reset()
    yield
    _deprecations.reset()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny config (b_atomic=16) so partitioning happens on small inputs."""
    return SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


@pytest.fixture
def medium_config() -> SystemConfig:
    """The scaled benchmark config (384 KiB LLC, b_atomic=128)."""
    return SystemConfig()


def random_sparse_array(
    rng: np.random.Generator, rows: int, cols: int, density: float
) -> np.ndarray:
    """A dense numpy array populated at roughly the given density."""
    mask = rng.random((rows, cols)) < density
    values = rng.uniform(0.1, 1.0, size=(rows, cols))
    return np.where(mask, values, 0.0)


def heterogeneous_array(
    rng: np.random.Generator, rows: int, cols: int, *, background: float = 0.01
) -> np.ndarray:
    """An array with one dense block over a sparse background."""
    array = random_sparse_array(rng, rows, cols, background)
    block = min(rows, cols) // 3
    if block:
        array[:block, :block] = rng.uniform(0.1, 1.0, size=(block, block))
    return array


def staged(array: np.ndarray) -> COOMatrix:
    return COOMatrix.from_dense(array)


def as_csr(array: np.ndarray):
    return coo_to_csr(COOMatrix.from_dense(array))


def as_dense(array: np.ndarray):
    return coo_to_dense(COOMatrix.from_dense(array))


def assert_matrix_equals(result, expected: np.ndarray, *, atol: float = 1e-10) -> None:
    """Compare any library matrix object against a dense numpy oracle."""
    np.testing.assert_allclose(result.to_dense(), expected, atol=atol)
