"""Tests for the storage/execution advisor."""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, profile_topology, recommend
from repro.advisor import _gini
from repro.generate import banded_matrix, power_network_matrix, uniform_random_matrix
from repro.kinds import StorageKind

from .conftest import heterogeneous_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_high(self):
        counts = np.zeros(100)
        counts[0] = 1000.0
        assert _gini(counts) > 0.9

    def test_empty_and_singleton(self):
        assert _gini(np.array([])) == 0.0
        assert _gini(np.array([5.0])) == 0.0


class TestProfile:
    def test_heterogeneous_detected(self, rng):
        staged = COOMatrix.from_dense(heterogeneous_array(rng, 96, 96))
        profile = profile_topology(staged, CONFIG)
        assert profile.topology_class == "heterogeneous"
        assert profile.dense_block_fraction > 0

    def test_banded_detected(self):
        staged = banded_matrix(512, 3000, bandwidth=4, seed=1)
        profile = profile_topology(staged, CONFIG)
        assert profile.topology_class == "banded"
        assert profile.normalized_bandwidth < 0.02

    def test_uniform_detected(self):
        staged = uniform_random_matrix(256, 4000, seed=2)
        profile = profile_topology(staged, CONFIG)
        assert profile.topology_class == "uniform"
        assert profile.block_skew < 0.4

    def test_dense_detected(self, rng):
        staged = COOMatrix.from_dense(rng.random((32, 32)))
        profile = profile_topology(staged, CONFIG)
        assert profile.topology_class == "dense"

    def test_empty_matrix(self):
        profile = profile_topology(COOMatrix.empty(64, 64), CONFIG)
        assert profile.nnz == 0
        assert profile.block_skew == 0.0


class TestRecommend:
    def test_power_network_partitions(self):
        staged = power_network_matrix(
            512, block_size=48, block_fill=0.9, background_density=0.001, seed=3
        )
        rec = recommend(staged, CONFIG)
        assert rec.partition_worthwhile
        assert rec.profile.topology_class == "heterogeneous"
        assert any("dense regions" in note for note in rec.notes)

    def test_banded_does_not_partition(self):
        staged = banded_matrix(512, 2000, bandwidth=4, seed=4)
        rec = recommend(staged, CONFIG)
        assert not rec.partition_worthwhile
        assert any("hypersparse" in note for note in rec.notes)

    def test_plain_storage_follows_density(self, rng):
        dense = recommend(COOMatrix.from_dense(rng.random((32, 32))), CONFIG)
        assert dense.plain_storage is StorageKind.DENSE
        sparse = recommend(uniform_random_matrix(128, 200, seed=5), CONFIG)
        assert sparse.plain_storage is StorageKind.SPARSE

    def test_all_strategies_costed(self, rng):
        rec = recommend(COOMatrix.from_dense(heterogeneous_array(rng, 64, 64)), CONFIG)
        assert set(rec.predicted_costs) == {
            "spspsp_gemm", "spspd_gemm", "ddd_gemm", "atmult",
        }
        assert all(cost >= 0 for cost in rec.predicted_costs.values())

    def test_summary_renders(self, rng):
        rec = recommend(COOMatrix.from_dense(heterogeneous_array(rng, 64, 64)), CONFIG)
        text = rec.summary()
        assert "topology class" in text
        assert "predicted" in text

    def test_prediction_matches_reality_on_contrast_pair(self):
        """The advisor's verdicts must match the measured Fig. 8 outcome:
        partition wins on the power-network class, loses on the band."""
        win = recommend(
            power_network_matrix(
                512, block_size=48, block_fill=0.9,
                background_density=0.001, seed=6,
            ),
            CONFIG,
        )
        lose = recommend(banded_matrix(512, 2000, bandwidth=4, seed=7), CONFIG)
        assert win.partition_worthwhile and not lose.partition_worthwhile
