"""Tests for the supervised multiprocess shard executor (clean paths).

Worker-kill recovery, quarantine and fault-injection parity live in
``tests/integration/test_worker_kill.py``; this module covers the
happy-path contract: bit-identical results, report population,
checkpoint resume and the thread fallback.
"""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, SystemTopology, atmult, build_at_matrix
from repro.core.parallel import parallel_atmult
from repro.engine import MultiplyOptions
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.report import WorkerRecord
from repro.resilience.supervisor import processes_available

from ..conftest import heterogeneous_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
TOPOLOGY = SystemTopology(sockets=2, cores_per_socket=2)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


def process_options(**overrides):
    defaults = dict(
        config=CONFIG, execution="processes", heartbeat_interval_seconds=0.05
    )
    defaults.update(overrides)
    return MultiplyOptions(**defaults)


class TestSupervisedCorrectness:
    def test_platform_supports_processes(self):
        # The remaining tests exercise the real backend; this canary
        # makes an environment regression obvious instead of mysterious.
        assert processes_available()

    def test_matches_sequential_bit_for_bit(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        sequential, _ = atmult(at, at, config=CONFIG)
        supervised, report = parallel_atmult(
            at, at, topology=TOPOLOGY, options=process_options()
        )
        np.testing.assert_array_equal(
            supervised.to_dense(), sequential.to_dense()
        )
        assert report.pairs > 0
        assert report.products > 0

    def test_matches_thread_backend_bit_for_bit(self, rng):
        a = heterogeneous_array(rng, 64, 48)
        b = heterogeneous_array(rng, 48, 64)
        at_a, at_b = build(a), build(b)
        threaded, _ = parallel_atmult(
            at_a, at_b, topology=TOPOLOGY,
            options=MultiplyOptions(config=CONFIG, execution="threads"),
        )
        supervised, _ = parallel_atmult(
            at_a, at_b, topology=TOPOLOGY, options=process_options()
        )
        np.testing.assert_array_equal(
            supervised.to_dense(), threaded.to_dense()
        )

    def test_single_worker_supervised_run(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        sequential, _ = atmult(at, at, config=CONFIG)
        supervised, report = parallel_atmult(
            at, at, topology=TOPOLOGY, options=process_options(workers=1)
        )
        np.testing.assert_array_equal(
            supervised.to_dense(), sequential.to_dense()
        )
        assert report.workers == 1


class TestSupervisedReport:
    def test_worker_records_are_populated(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        _, report = parallel_atmult(
            at, at, topology=TOPOLOGY, options=process_options()
        )
        failure = report.failure
        assert failure.worker_deaths == 0
        assert failure.pairs_reassigned == 0
        assert failure.pairs_quarantined == 0
        assert failure.clean
        assert len(failure.workers) >= 1
        completed = 0
        for record in failure.workers.values():
            assert isinstance(record, WorkerRecord)
            assert record.pid is not None and record.pid > 0
            assert record.heartbeats >= 1
            assert not record.died
            completed += record.pairs_completed
        assert completed == report.pairs

    def test_busy_time_lands_on_shard_lanes(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        _, report = parallel_atmult(
            at, at, topology=TOPOLOGY, options=process_options()
        )
        assert report.worker_busy_seconds
        assert all(
            lane.startswith("shard-") for lane in report.worker_busy_seconds
        )
        assert sum(report.worker_busy_seconds.values()) > 0.0

    def test_generous_pair_deadline_changes_nothing(self, rng):
        at = build(heterogeneous_array(rng, 64, 64))
        sequential, _ = atmult(at, at, config=CONFIG)
        supervised, report = parallel_atmult(
            at, at, topology=TOPOLOGY,
            options=process_options(pair_deadline_seconds=120.0),
        )
        np.testing.assert_array_equal(
            supervised.to_dense(), sequential.to_dense()
        )
        assert report.failure.worker_deaths == 0


class TestSupervisedCheckpoint:
    def test_resume_skips_journaled_pairs(self, rng, tmp_path):
        at = build(heterogeneous_array(rng, 64, 64))
        first_store = CheckpointStore(tmp_path / "ckpt")
        first, first_report = parallel_atmult(
            at, at, topology=TOPOLOGY,
            options=process_options(checkpoint=first_store),
        )
        assert first_report.pairs_executed > 0
        resume_store = CheckpointStore(tmp_path / "ckpt", resume=True)
        resumed, resumed_report = parallel_atmult(
            at, at, topology=TOPOLOGY,
            options=process_options(checkpoint=resume_store),
        )
        np.testing.assert_array_equal(resumed.to_dense(), first.to_dense())
        assert resumed_report.failure.pairs_resumed == first_report.pairs
        assert resumed_report.pairs_executed == 0


class TestThreadFallback:
    def test_unavailable_platform_falls_back_with_a_warning(
        self, rng, monkeypatch
    ):
        import repro.resilience.supervisor as supervisor

        monkeypatch.setattr(supervisor, "processes_available", lambda: False)
        at = build(heterogeneous_array(rng, 64, 64))
        sequential, _ = atmult(at, at, config=CONFIG)
        with pytest.warns(RuntimeWarning, match="falls back to threads"):
            result, report = parallel_atmult(
                at, at, topology=TOPOLOGY, options=process_options()
            )
        np.testing.assert_array_equal(
            result.to_dense(), sequential.to_dense()
        )
        # The thread backend leaves no per-process worker records.
        assert not report.failure.workers
