"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ConfigError, MemoryLimitError
from repro.kernels.accumulator import DenseAccumulator, SparseAccumulator
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    InjectedFaultError,
    active_plan,
    fire_corruption,
    fire_hooks,
    inject_faults,
    stable_unit,
    suppress_faults,
    task_scope,
)


def fire_pattern(plan, sites=40):
    """Which of ``sites`` hook firings raise, as a boolean list."""
    pattern = []
    with inject_faults(plan):
        for i in range(sites):
            with task_scope((0, i), 1):
                try:
                    fire_hooks("kernel", i)
                    pattern.append(False)
                except InjectedFaultError:
                    pattern.append(True)
    return pattern


class TestStableUnit:
    def test_deterministic(self):
        assert stable_unit(1, "a", (2, 3)) == stable_unit(1, "a", (2, 3))

    def test_distinct_inputs_differ(self):
        draws = {stable_unit(seed, "site") for seed in range(100)}
        assert len(draws) == 100

    def test_in_unit_interval(self):
        for seed in range(50):
            assert 0.0 <= stable_unit(seed) < 1.0


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(0, kernel_error_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(0, memory_pressure_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(0, stall_seconds=-1.0)

    def test_same_seed_same_pattern(self):
        first = fire_pattern(FaultPlan(7, kernel_error_rate=0.3))
        second = fire_pattern(FaultPlan(7, kernel_error_rate=0.3))
        assert first == second
        assert any(first)
        assert not all(first)

    def test_different_seed_different_pattern(self):
        assert fire_pattern(FaultPlan(7, kernel_error_rate=0.3)) != fire_pattern(
            FaultPlan(8, kernel_error_rate=0.3)
        )

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(7)
        assert not any(fire_pattern(plan))
        assert plan.injected == 0

    def test_full_rate_always_fires(self):
        plan = FaultPlan(7, kernel_error_rate=1.0)
        assert all(fire_pattern(plan))
        assert plan.count(FaultKind.KERNEL_ERROR) == 40

    def test_events_recorded_with_context(self):
        plan = FaultPlan(3, kernel_error_rate=1.0)
        with (
            inject_faults(plan),
            task_scope((2, 5), 4),
            pytest.raises(InjectedFaultError) as excinfo,
        ):
            fire_hooks("kernel", "extra")
        assert excinfo.value.pair == (2, 5)
        event = plan.events[0]
        assert event.task == (2, 5)
        assert event.iteration == 4
        assert event.site == "kernel"
        assert plan.raising_count == 1

    def test_reset_clears_events(self):
        plan = FaultPlan(7, kernel_error_rate=1.0)
        fire_pattern(plan)
        plan.reset()
        assert plan.injected == 0

    def test_memory_pressure_raises_memory_limit_error(self):
        plan = FaultPlan(1, memory_pressure_rate=1.0)
        with inject_faults(plan), pytest.raises(MemoryLimitError):
            fire_hooks("pair", (0, 0))
        assert plan.count(FaultKind.MEMORY_PRESSURE) == 1

    def test_stall_records_without_raising(self):
        plan = FaultPlan(1, stall_rate=1.0, stall_seconds=0.0)
        with inject_faults(plan):
            fire_hooks("kernel")
        assert plan.count(FaultKind.STALL) == 1


class TestActivation:
    def test_no_plan_is_noop(self):
        assert active_plan() is None
        fire_hooks("kernel")  # must not raise

    def test_context_restores_previous(self):
        plan = FaultPlan(0)
        with inject_faults(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError), inject_faults(FaultPlan(0)):
            raise RuntimeError("boom")
        assert active_plan() is None

    def test_suppress_faults(self):
        plan = FaultPlan(0, kernel_error_rate=1.0, corruption_rate=1.0)
        accumulator = DenseAccumulator(4, 4)
        with inject_faults(plan), suppress_faults():
            fire_hooks("kernel")
            fire_corruption("kernel", accumulator)
        assert plan.injected == 0
        assert np.isfinite(accumulator.array).all()


class TestCorruption:
    def test_pokes_nan_into_dense_accumulator(self):
        accumulator = DenseAccumulator(4, 4)
        plan = FaultPlan(0, corruption_rate=1.0)
        with inject_faults(plan):
            fire_corruption("kernel", accumulator)
        assert np.isnan(accumulator.array).any()
        assert plan.count(FaultKind.CORRUPTION) == 1

    def test_pokes_nan_into_sparse_accumulator(self):
        accumulator = SparseAccumulator(4, 4)
        plan = FaultPlan(0, corruption_rate=1.0)
        with inject_faults(plan):
            fire_corruption("kernel", accumulator)
        payload = accumulator.finalize()
        assert np.isnan(payload.values).any()

    def test_silent(self):
        plan = FaultPlan(0, corruption_rate=1.0)
        with inject_faults(plan):
            fire_corruption("kernel", DenseAccumulator(2, 2))  # no exception
