"""Tests for graceful degradation state under memory pressure."""

import math

import numpy as np

from repro.config import SystemConfig
from repro.density.map import DensityMap
from repro.density.water_level import memory_at_threshold, water_level_threshold
from repro.resilience.degrade import DegradationState


def make_state(limit=None, threshold=0.0, grid=None, block=8, rows=32, cols=32):
    config = SystemConfig(b_atomic=block)
    if grid is None:
        estimate = None
    else:
        estimate = DensityMap(rows, cols, block, np.asarray(grid, dtype=np.float64))
    return DegradationState(estimate, limit, config, threshold), config


def heterogeneous_grid():
    # 4x4 blocks with distinct densities from near-empty to full.
    return np.linspace(0.05, 1.0, 16).reshape(4, 4)


class TestBookkeeping:
    def test_note_completed_accumulates_bytes(self):
        state, _ = make_state(limit=1000.0, grid=heterogeneous_grid())
        state.note_completed(0, 8, 0, 8, 300.0)
        state.note_completed(8, 16, 0, 8, 200.0)
        assert state.completed_bytes == 500.0

    def test_note_completed_zeroes_region(self):
        state, _ = make_state(limit=1000.0, grid=heterogeneous_grid())
        state.note_completed(0, 16, 0, 16, 10.0)
        assert (state._remaining[:2, :2] == 0.0).all()
        assert (state._remaining[2:, :] > 0.0).all()

    def test_over_budget(self):
        state, _ = make_state(limit=1000.0, grid=heterogeneous_grid())
        assert not state.over_budget(1000.0)
        assert state.over_budget(1001.0)
        state.note_completed(0, 8, 0, 8, 600.0)
        assert state.over_budget(500.0)

    def test_no_limit_never_over_budget(self):
        state, _ = make_state(limit=None, grid=heterogeneous_grid())
        assert not state.over_budget(1e18)


class TestEscalationPath:
    """Walk the full escalation path step by step (issue 5, satellite 3).

    Every degradation step must (a) strictly raise the effective
    threshold, (b) demote at least one future dense target to sparse,
    and (c) eventually reach infinity — the all-sparse floor — under
    repeated pressure, in a bounded number of steps.
    """

    def test_every_step_raises_and_demotes_until_all_sparse(self):
        grid = heterogeneous_grid()
        state, _ = make_state(limit=None, threshold=0.0, grid=grid)
        previous = state.threshold
        steps = 0
        while not state.exhausted:
            dense_before = int((state._remaining >= previous).sum())
            new = state.degrade()
            steps += 1
            assert new > previous  # (a) strictly monotone
            dense_after = int((state._remaining >= new).sum())
            if not math.isinf(new):
                assert dense_before > 0
                assert dense_after < dense_before  # (b) demotes >= 1 target
            previous = new
            assert steps <= grid.size + 1  # bounded escalation
        assert math.isinf(state.threshold)  # (c) all-sparse floor
        assert state.degradations == steps

    def test_pressure_with_a_real_budget_also_reaches_all_sparse(self):
        grid = heterogeneous_grid()
        state, _ = make_state(limit=50.0, threshold=0.0, grid=grid)
        state.note_completed(0, 8, 0, 8, 49.0)  # nearly exhaust the budget
        previous = state.threshold
        for _ in range(grid.size + 2):
            if state.exhausted:
                break
            new = state.degrade()
            assert new > previous
            previous = new
        assert state.exhausted


class TestDegrade:
    def test_monotone_to_infinity(self):
        state, _ = make_state(limit=None, threshold=0.0, grid=heterogeneous_grid())
        previous = state.threshold
        for _ in range(40):
            new = state.degrade()
            assert new > previous or math.isinf(new)
            if math.isinf(new):
                break
            previous = new
        assert state.exhausted
        # 16 distinct block densities: at most 17 steps to infinity.
        assert state.degradations <= 17

    def test_recomputes_from_remaining_histogram(self):
        grid = heterogeneous_grid()
        state, config = make_state(limit=None, threshold=0.0, grid=grid)
        # Give the state a real limit sized so that after "spending" most
        # of it, the water level must rise above the initial threshold.
        estimate = DensityMap(32, 32, 8, grid)
        full = water_level_threshold(estimate, None, config)
        limit = memory_at_threshold(estimate, 0.5, config)
        state, config = make_state(limit=limit, threshold=full.threshold, grid=grid)
        spent = 0.08 * limit
        state.note_completed(0, 8, 0, 32, spent)
        new = state.degrade()
        assert new > full.threshold
        assert not math.isinf(new)
        # The recomputed level must keep the remaining blocks within the
        # remaining budget.
        remaining_map = DensityMap(32, 32, 8, state._remaining)
        assert memory_at_threshold(remaining_map, new, config) <= limit - spent + 1e-9

    def test_escalation_demotes_at_least_one_block(self):
        grid = heterogeneous_grid()
        state, _ = make_state(limit=None, threshold=0.5, grid=grid)
        new = state.degrade()
        dense_before = (grid >= 0.5).sum()
        dense_after = (grid >= new).sum()
        assert dense_after < dense_before

    def test_without_estimate_escalates_to_infinity(self):
        state, _ = make_state(limit=None, threshold=0.3, grid=None)
        assert math.isinf(state.degrade())
        assert state.exhausted

    def test_degrade_after_exhaustion_stays_infinite(self):
        state, _ = make_state(limit=None, threshold=0.3, grid=None)
        state.degrade()
        assert math.isinf(state.degrade())

    def test_exhausted_budget_jumps_to_infinity(self):
        state, _ = make_state(limit=100.0, threshold=0.2, grid=heterogeneous_grid())
        state.note_completed(0, 8, 0, 8, 200.0)  # already over the limit
        assert math.isinf(state.degrade())
