"""Tests for RetryPolicy and the resilient pair runner."""

import time

import pytest

from repro.errors import (
    ConfigError,
    MemoryLimitError,
    ResultCorruptionError,
    RetryExhaustedError,
)
from repro.resilience.report import FailureReport
from repro.resilience.retry import ResilientPairRunner, RetryPolicy


def make_runner(policy, degradation=None):
    report = FailureReport()
    sleeps = []
    runner = ResilientPairRunner(
        policy, report, degradation, sleep=sleeps.append
    )
    return runner, report, sleeps


class TestRetryPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_seconds": -1.0},
            {"backoff_factor": 0.5},
            {"backoff_max_seconds": -0.1},
            {"jitter_fraction": 1.5},
            {"task_deadline_seconds": 0.0},
            {"max_degradations": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_deterministic(self):
        policy = RetryPolicy(backoff_base_seconds=0.01)
        assert policy.backoff_seconds((0, 1), 2) == policy.backoff_seconds((0, 1), 2)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.01,
            backoff_factor=2.0,
            backoff_max_seconds=0.05,
            jitter_fraction=0.0,
        )
        assert policy.backoff_seconds((0, 0), 1) == pytest.approx(0.01)
        assert policy.backoff_seconds((0, 0), 2) == pytest.approx(0.02)
        assert policy.backoff_seconds((0, 0), 5) == pytest.approx(0.05)  # capped

    def test_jitter_shrinks_only(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.01, jitter_fraction=0.5, backoff_factor=1.0
        )
        for attempt in range(1, 10):
            delay = policy.backoff_seconds((1, 2), attempt)
            assert 0.005 <= delay <= 0.01

    def test_zero_base_no_sleep(self):
        policy = RetryPolicy(backoff_base_seconds=0.0)
        assert policy.backoff_seconds((0, 0), 1) == 0.0


class TestRunner:
    def test_success_first_attempt(self):
        runner, report, sleeps = make_runner(RetryPolicy())
        assert runner.run((0, 0), lambda fs: "ok") == "ok"
        assert report.attempts == 1
        assert report.clean
        assert not sleeps

    def test_transient_failures_recovered(self):
        runner, report, sleeps = make_runner(
            RetryPolicy(max_attempts=3, backoff_base_seconds=0.01)
        )
        calls = []

        def compute(force_sparse):
            calls.append(force_sparse)
            if len(calls) < 3:
                raise RuntimeError("flaky")
            return "recovered"

        assert runner.run((1, 2), compute) == "recovered"
        assert report.retries == 2
        assert report.failures == 0
        assert len(sleeps) == 2
        assert report.pair_outcomes[(1, 2)].retries == 2

    def test_exhaustion_raises_with_pair(self):
        runner, report, _ = make_runner(
            RetryPolicy(max_attempts=3, backoff_base_seconds=0.0)
        )

        def compute(force_sparse):
            raise RuntimeError("always broken")

        with pytest.raises(RetryExhaustedError) as excinfo:
            runner.run((4, 7), compute)
        error = excinfo.value
        assert error.pair == (4, 7)
        assert error.attempts == 3
        assert isinstance(error.last_error, RuntimeError)
        assert report.failures == 1
        assert report.retries == 2
        assert report.pair_outcomes[(4, 7)].failed

    def test_memory_pressure_degrades_to_sparse(self):
        class FakeDegradation:
            def __init__(self):
                self.calls = 0

            def degrade(self):
                self.calls += 1

        degradation = FakeDegradation()
        runner, report, _ = make_runner(RetryPolicy(), degradation)
        seen = []

        def compute(force_sparse):
            seen.append(force_sparse)
            if len(seen) == 1:
                raise MemoryLimitError("spike")
            return "sparse result"

        assert runner.run((0, 0), compute) == "sparse result"
        assert seen == [False, True]
        assert degradation.calls == 1
        assert report.degradations == 1
        assert report.retries == 0  # degradations do not consume retry budget

    def test_degradation_budget_exhausted(self):
        runner, report, _ = make_runner(RetryPolicy(max_degradations=2))

        def compute(force_sparse):
            raise MemoryLimitError("persistent pressure")

        with pytest.raises(RetryExhaustedError):
            runner.run((0, 1), compute)
        assert report.degradations == 2
        assert report.failures == 1

    def test_deadline_violation_retries_then_accepts_late(self):
        runner, report, _ = make_runner(
            RetryPolicy(
                max_attempts=3,
                task_deadline_seconds=0.005,
                backoff_base_seconds=0.0,
            )
        )
        calls = []

        def compute(force_sparse):
            calls.append(1)
            time.sleep(0.02)
            return "slow"

        assert runner.run((0, 0), compute) == "slow"
        assert len(calls) == 3
        assert report.deadline_violations == 2
        outcome = report.pair_outcomes[(0, 0)]
        assert outcome.late

    def test_guard_violation_triggers_fallback(self):
        runner, report, _ = make_runner(RetryPolicy())

        def validate(result):
            if result != "reference":
                raise ResultCorruptionError("corrupt", reason="non-finite")

        result = runner.run(
            (0, 0),
            lambda fs: "vectorized",
            validate=validate,
            fallback=lambda fs: "reference",
        )
        assert result == "reference"
        assert report.fallbacks == 1

    def test_validation_disabled_by_policy(self):
        runner, report, _ = make_runner(RetryPolicy(validate_results=False))

        def validate(result):
            raise AssertionError("must not be called")

        assert runner.run((0, 0), lambda fs: "x", validate=validate) == "x"
        assert report.fallbacks == 0
