"""Cooperative cancellation and deadline propagation (resilience/cancel.py).

The contract under test: a tripped :class:`CancelToken` stops a
multiplication at the next tile-pair boundary, flushes the checkpoint
journal first, raises the typed cancellation error, and the interrupted
run resumes bit-identically from the journal.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (
    CancelToken,
    CheckpointStore,
    COOMatrix,
    DeadlineExceededError,
    MultiplyOptions,
    OperationCancelledError,
    atmult,
    build_at_matrix,
    parallel_atmult,
)
from repro.topology.system import SystemTopology

from ..conftest import heterogeneous_array


class CancelAfterPairs(CancelToken):
    """Deterministic test token: trips after N ``check()`` polls.

    The executors poll once per tile-pair, so ``CancelAfterPairs(n)``
    lets exactly ``n`` pairs run before the cancellation surfaces.
    """

    def __init__(self, pairs: int) -> None:
        super().__init__()
        self._budget = pairs

    def check(self) -> None:
        if self._budget <= 0:
            self.cancel("test budget exhausted")
        self._budget -= 1
        super().check()


@pytest.fixture
def workload(rng, small_config):
    a = heterogeneous_array(rng, 96, 72, background=0.06)
    b = heterogeneous_array(rng, 72, 88, background=0.06)
    at_a = build_at_matrix(COOMatrix.from_dense(a), small_config)
    at_b = build_at_matrix(COOMatrix.from_dense(b), small_config)
    return a, b, at_a, at_b


class TestCancelToken:
    def test_fresh_token_is_inert(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        assert token.remaining() is None
        token.check()  # must not raise

    def test_explicit_cancel_raises_with_reason(self):
        token = CancelToken()
        token.cancel("operator stop")
        assert token.cancelled
        assert token.reason == "operator stop"
        with pytest.raises(OperationCancelledError) as excinfo:
            token.check()
        assert excinfo.value.reason == "operator stop"
        assert "operator stop" in str(excinfo.value)

    def test_first_cancel_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_deadline_expiry_raises_deadline_error(self):
        token = CancelToken(deadline_seconds=0.005)
        assert not token.deadline_expired
        time.sleep(0.02)
        assert token.deadline_expired
        assert token.cancelled
        assert token.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_deadline_error_is_a_cancellation(self):
        # Callers may catch the base class to handle both uniformly.
        assert issubclass(DeadlineExceededError, OperationCancelledError)
        assert issubclass(OperationCancelledError, RuntimeError)

    def test_remaining_counts_down(self):
        token = CancelToken(deadline_seconds=60.0)
        remaining = token.remaining()
        assert remaining is not None and 0.0 < remaining <= 60.0

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError):
            CancelToken(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            CancelToken(deadline_seconds=-1.0)


class TestSequentialCancellation:
    def test_pre_cancelled_token_stops_before_any_pair(
        self, workload, small_config
    ):
        _, _, at_a, at_b = workload
        token = CancelToken()
        token.cancel("never started")
        with pytest.raises(OperationCancelledError):
            atmult(
                at_a, at_b, config=small_config,
                options=MultiplyOptions(cancel=token),
            )

    def test_cancel_stops_within_one_pair_and_flushes(
        self, workload, small_config, tmp_path
    ):
        """Exactly N pairs run, every one of them is journaled."""
        _, _, at_a, at_b = workload
        token = CancelAfterPairs(3)
        store = CheckpointStore(tmp_path, resume=False)
        with pytest.raises(OperationCancelledError):
            atmult(
                at_a, at_b, config=small_config,
                options=MultiplyOptions(checkpoint=store, cancel=token),
            )
        journaled = sorted(tmp_path.glob("pairs/pair-*.npz"))
        assert len(journaled) == 3  # flushed before the error unwound

    def test_cancelled_run_resumes_bit_identically(
        self, workload, small_config, tmp_path
    ):
        a, b, at_a, at_b = workload
        baseline, _ = atmult(at_a, at_b, config=small_config)
        with pytest.raises(OperationCancelledError):
            atmult(
                at_a, at_b, config=small_config,
                options=MultiplyOptions(
                    checkpoint=CheckpointStore(tmp_path, resume=False),
                    cancel=CancelAfterPairs(2),
                ),
            )
        resumed, report = atmult(
            at_a, at_b, config=small_config,
            options=MultiplyOptions(
                checkpoint=CheckpointStore(tmp_path, resume=True)
            ),
        )
        assert report.failure.pairs_resumed == 2
        assert np.array_equal(resumed.to_dense(), baseline.to_dense())
        np.testing.assert_allclose(resumed.to_dense(), a @ b, atol=1e-10)

    def test_deadline_token_surfaces_deadline_error(
        self, workload, small_config, tmp_path
    ):
        _, _, at_a, at_b = workload
        token = CancelToken(deadline_seconds=0.001)
        time.sleep(0.01)  # expire before the first pair boundary
        with pytest.raises(DeadlineExceededError):
            atmult(
                at_a, at_b, config=small_config,
                options=MultiplyOptions(
                    checkpoint=CheckpointStore(tmp_path, resume=False),
                    cancel=token,
                ),
            )


class TestThreadBackendCancellation:
    def test_cancel_is_not_a_pair_failure(self, workload, small_config, tmp_path):
        """The thread pool reports cancellation, not TaskFailedError."""
        a, b, at_a, at_b = workload
        token = CancelToken()
        token.cancel("stop the pool")
        topology = SystemTopology.scaled_default()
        with pytest.raises(OperationCancelledError):
            parallel_atmult(
                at_a, at_b, topology=topology,
                options=MultiplyOptions(
                    checkpoint=CheckpointStore(tmp_path, resume=False),
                    cancel=token,
                    execution="threads",
                ),
            )
        # Resume with a fresh token: completes and matches numpy.
        result, _ = parallel_atmult(
            at_a, at_b, topology=topology,
            options=MultiplyOptions(
                checkpoint=CheckpointStore(tmp_path, resume=True),
                execution="threads",
            ),
        )
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
