"""Tests for the result guard and the reference fallback path."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ResultCorruptionError
from repro.formats.dense import DenseMatrix
from repro.kernels.accumulator import DenseAccumulator, SparseAccumulator
from repro.kernels.registry import run_tile_product
from repro.kernels.window import Window
from repro.resilience.guard import reference_tile_product, validate_tile

from ..conftest import as_csr


def dense_payload(array):
    return DenseMatrix(np.asarray(array, dtype=np.float64))


class TestValidateTile:
    def test_accepts_clean_dense_tile(self):
        validate_tile(dense_payload(np.ones((4, 4))), 4, 4, estimated_density=1.0)

    def test_accepts_clean_sparse_tile(self):
        payload = as_csr(np.eye(5))
        validate_tile(payload, 5, 5, estimated_density=0.2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ResultCorruptionError) as excinfo:
            validate_tile(dense_payload(np.ones((4, 4))), 4, 8, pair=(1, 2))
        assert excinfo.value.reason == "shape"
        assert excinfo.value.pair == (1, 2)

    def test_rejects_nan_dense(self):
        array = np.ones((4, 4))
        array[2, 3] = np.nan
        with pytest.raises(ResultCorruptionError) as excinfo:
            validate_tile(dense_payload(array), 4, 4)
        assert excinfo.value.reason == "non-finite"

    def test_rejects_inf_sparse(self):
        array = np.eye(4)
        array[0, 0] = np.inf
        with pytest.raises(ResultCorruptionError) as excinfo:
            validate_tile(as_csr(array), 4, 4)
        assert excinfo.value.reason == "non-finite"

    def test_rejects_nnz_over_estimate_bound(self):
        # A full 64x64 tile against a near-empty estimate: 4096 nnz vs
        # a floor of 512 and an estimated allowance of 4096 * 8 * 0.001.
        payload = dense_payload(np.ones((64, 64)))
        with pytest.raises(ResultCorruptionError) as excinfo:
            validate_tile(payload, 64, 64, estimated_density=0.001)
        assert excinfo.value.reason == "nnz-bound"

    def test_floor_exempts_small_tiles(self):
        # 100 nnz is under the 512-element floor, so even a tiny
        # estimate must not flag it.
        payload = as_csr(np.eye(100))
        validate_tile(payload, 100, 100, estimated_density=1e-6)

    def test_no_estimate_skips_density_bound(self):
        validate_tile(dense_payload(np.ones((64, 64))), 64, 64, estimated_density=None)


class TestReferenceTileProduct:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.a = (rng.random((16, 16)) < 0.3) * rng.random((16, 16))
        self.b = (rng.random((16, 16)) < 0.3) * rng.random((16, 16))
        self.config = SystemConfig(b_atomic=16)

    def test_spsp_matches_vectorized(self):
        a = as_csr(self.a)
        b = as_csr(self.b)
        wa = Window(0, 16, 0, 16)
        wb = Window(0, 16, 0, 16)
        expected = DenseAccumulator(16, 16)
        run_tile_product(a, wa, b, wb, expected)
        got = DenseAccumulator(16, 16)
        reference_tile_product(a, wa, b, wb, got)
        np.testing.assert_allclose(
            got.finalize().to_dense(), expected.finalize().to_dense(), atol=1e-12
        )

    def test_spsp_sparse_accumulator(self):
        a = as_csr(self.a)
        b = as_csr(self.b)
        wa = Window(0, 16, 0, 16)
        wb = Window(0, 16, 0, 16)
        out = SparseAccumulator(16, 16)
        reference_tile_product(a, wa, b, wb, out)
        np.testing.assert_allclose(
            out.finalize().to_dense(), self.a @ self.b, atol=1e-12
        )

    def test_mixed_kinds_fall_through_to_registry(self):
        a = DenseMatrix(self.a)
        b = as_csr(self.b)
        wa = Window(0, 16, 0, 16)
        wb = Window(0, 16, 0, 16)
        out = DenseAccumulator(16, 16)
        reference_tile_product(a, wa, b, wb, out)
        np.testing.assert_allclose(
            out.finalize().to_dense(), self.a @ self.b, atol=1e-12
        )

    def test_empty_window_is_noop(self):
        a = as_csr(np.zeros((16, 16)))
        b = as_csr(self.b)
        wa = Window(0, 0, 0, 0)
        wb = Window(0, 16, 0, 16)
        out = DenseAccumulator(16, 16)
        reference_tile_product(a, wa, b, wb, out)
        assert out.finalize().nnz == 0
