"""Tests for the deep integrity verifier (resilience/integrity.py).

One test per violation class, as the issue's acceptance criteria
require: corrupt exactly one invariant, assert exactly that code fires.
Live objects are built valid and then mutated in place (``check=False``
where the constructors would refuse), so every violation reaches the
verifier rather than a constructor guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import COOMatrix, build_at_matrix, save_at_matrix
from repro.errors import IntegrityError
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix
from repro.resilience.integrity import (
    check_integrity,
    verify_archive,
    verify_at_matrix,
    verify_csr,
    verify_dense,
)

from ..conftest import heterogeneous_array


def codes(violations) -> list[str]:
    return sorted({violation.code for violation in violations})


@pytest.fixture
def csr() -> CSRMatrix:
    indptr = np.array([0, 2, 4, 7], dtype=np.int64)
    indices = np.array([0, 2, 1, 3, 0, 1, 2], dtype=np.int64)
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
    return CSRMatrix(3, 4, indptr, indices, values)


@pytest.fixture
def at_matrix(rng, small_config):
    array = heterogeneous_array(rng, 64, 48)
    return build_at_matrix(COOMatrix.from_dense(array), small_config)


class TestCsrViolations:
    def test_valid_csr_is_clean(self, csr):
        assert verify_csr(csr) == []

    def test_csr_indptr_wrong_length(self, csr):
        broken = CSRMatrix(
            4, 4, csr.indptr, csr.indices, csr.values, check=False
        )
        assert codes(verify_csr(broken)) == ["csr-indptr"]

    def test_csr_indptr_bad_endpoints(self, csr):
        csr.indptr[-1] = csr.indptr[-1] + 2
        violations = verify_csr(csr)
        assert "csr-indptr" in codes(violations)

    def test_csr_indptr_decreasing(self, csr):
        csr.indptr[1] = 5  # > indptr[2] == 4
        violations = verify_csr(csr)
        assert "csr-indptr" in codes(violations)
        assert "decreases at row" in violations[-1].message

    def test_csr_index_bounds(self, csr):
        csr.indices[0] = 99
        assert codes(verify_csr(csr)) == ["csr-index-bounds"]

    def test_csr_column_order(self, csr):
        # Swap the two entries of row 0: columns become (2, 0).
        csr.indices[0], csr.indices[1] = csr.indices[1], csr.indices[0]
        violations = verify_csr(csr)
        assert codes(violations) == ["csr-column-order"]
        assert "row 0" in violations[0].message

    def test_csr_values_length_mismatch(self, csr):
        broken = CSRMatrix(
            3, 4, csr.indptr, csr.indices, csr.values[:-1], check=False
        )
        violations = verify_csr(broken)
        assert "csr-values" in codes(violations)

    def test_csr_values_nonfinite(self, csr):
        csr.values[3] = np.nan
        violations = verify_csr(csr)
        assert codes(violations) == ["csr-values"]
        assert "non-finite" in violations[0].message


class TestDenseViolations:
    def test_valid_dense_is_clean(self):
        assert verify_dense(DenseMatrix(np.ones((4, 4)))) == []

    def test_dense_nonfinite(self):
        matrix = DenseMatrix(np.ones((4, 4)))
        matrix.array[2, 3] = np.inf
        violations = verify_dense(matrix)
        assert codes(violations) == ["dense-nonfinite"]
        assert "(2, 3)" in violations[0].message


class TestTileViolations:
    def test_valid_matrix_is_clean(self, at_matrix):
        assert verify_at_matrix(at_matrix) == []

    def test_tile_shape(self, at_matrix):
        tile = at_matrix.tiles[0]
        tile.rows = tile.rows + 1  # directory extent no longer matches payload
        violations = verify_at_matrix(at_matrix)
        assert "tile-shape" in codes(violations)

    def test_tile_bounds(self, at_matrix):
        tile = at_matrix.tiles[0]
        tile.row0 = at_matrix.rows  # pushed past the matrix edge
        violations = verify_at_matrix(at_matrix)
        assert "tile-bounds" in codes(violations)

    def test_tile_overlap(self, at_matrix):
        first, second = at_matrix.tiles[0], at_matrix.tiles[1]
        second.row0 = first.row0  # slide tile 1 onto tile 0
        second.col0 = first.col0
        violations = verify_at_matrix(at_matrix)
        assert "tile-overlap" in codes(violations)
        assert any("overlap" in violation.message for violation in violations)


class TestArchiveViolations:
    def test_fresh_archive_is_clean(self, at_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        assert verify_archive(path) == []

    def test_archive_unreadable(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an archive")
        violations = verify_archive(path)
        assert codes(violations) == ["archive-unreadable"]

    def test_archive_bit_flip_is_detected(self, at_matrix, tmp_path):
        import struct
        import zipfile

        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        with zipfile.ZipFile(path) as archive:
            info = max(archive.infolist(), key=lambda entry: entry.compress_size)
        blob = bytearray(path.read_bytes())
        # Locate the member's compressed bytes via its local file header
        # (30 fixed bytes + name + extra field) and flip one in the middle.
        name_len, extra_len = struct.unpack_from(
            "<HH", blob, info.header_offset + 26
        )
        data_start = info.header_offset + 30 + name_len + extra_len
        blob[data_start + info.compress_size // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        violations = verify_archive(path)
        assert violations  # either unreadable or a checksum mismatch
        assert set(codes(violations)) <= {
            "archive-unreadable",
            "archive-checksum",
            "archive-structure",
        }

    def test_archive_checksum_mismatch(self, at_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        target = next(
            name
            for name, array in arrays.items()
            if name not in ("meta", "tiles", "checksums") and array.size
        )
        tampered = arrays[target].copy()
        tampered.ravel()[0] += 1
        arrays[target] = tampered
        np.savez_compressed(path, **arrays)  # keeps the stale checksums member
        violations = verify_archive(path)
        assert "archive-checksum" in codes(violations)
        assert any(violation.location == target for violation in violations)

    def test_archive_structure_missing_member(self, at_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        removed = next(
            name for name in arrays if name not in ("meta", "tiles", "checksums")
        )
        del arrays[removed]
        np.savez_compressed(path, **arrays)
        violations = verify_archive(path)
        assert "archive-structure" in codes(violations)

    def test_v1_archive_without_checksums_is_clean(self, at_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["checksums"]
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = 1
        np.savez_compressed(path, **arrays)
        assert verify_archive(path) == []


class TestCheckIntegrity:
    def test_clean_target_passes(self, at_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_at_matrix(at_matrix, path)
        check_integrity(at_matrix)
        check_integrity(path)

    def test_raises_with_violations_attached(self, csr):
        csr.indices[0] = 99
        with pytest.raises(IntegrityError) as excinfo:
            check_integrity(csr)
        assert excinfo.value.violations
        assert excinfo.value.violations[0].code == "csr-index-bounds"
        assert "csr-index-bounds" in str(excinfo.value)
