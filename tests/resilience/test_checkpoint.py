"""Tests for the crash-safe checkpoint journal (resilience/checkpoint.py)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import (
    CheckpointStore,
    COOMatrix,
    MultiplyOptions,
    PlanMismatchError,
    atmult,
    build_at_matrix,
    parallel_atmult,
)
from repro.errors import IntegrityError
from repro.topology.system import SystemTopology

from ..conftest import heterogeneous_array


@pytest.fixture
def workload(rng, small_config):
    a = heterogeneous_array(rng, 96, 72, background=0.06)
    b = heterogeneous_array(rng, 72, 88, background=0.06)
    at_a = build_at_matrix(COOMatrix.from_dense(a), small_config)
    at_b = build_at_matrix(COOMatrix.from_dense(b), small_config)
    return a, b, at_a, at_b


def run(at_a, at_b, config, directory, *, resume=False, flush=1):
    store = CheckpointStore(directory, resume=resume)
    options = MultiplyOptions(checkpoint=store, checkpoint_flush_pairs=flush)
    result, report = atmult(at_a, at_b, config=config, options=options)
    return result, report, store


def pair_records(directory) -> list[Path]:
    return sorted(Path(directory).glob("pairs/pair-*.npz"))


class TestJournalLifecycle:
    def test_fresh_run_journals_every_pair(self, workload, small_config, tmp_path):
        a, b, at_a, at_b = workload
        result, report, store = run(at_a, at_b, small_config, tmp_path)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)
        assert report.pairs_executed > 0
        assert report.failure.pairs_resumed == 0
        assert (tmp_path / "MANIFEST.json").exists()
        assert len(pair_records(tmp_path)) == report.pairs_executed
        assert store.records_written == report.pairs_executed
        assert report.checkpoint_flushes == store.flushes > 0

    def test_resume_reexecutes_nothing(self, workload, small_config, tmp_path):
        a, b, at_a, at_b = workload
        first, first_report, _ = run(at_a, at_b, small_config, tmp_path)
        second, second_report, _ = run(
            at_a, at_b, small_config, tmp_path, resume=True
        )
        assert second_report.pairs_executed == 0
        assert second_report.failure.pairs_resumed == first_report.pairs_executed
        assert np.array_equal(second.to_dense(), first.to_dense())
        assert "resumed" in second_report.failure.summary()

    def test_resume_after_partial_journal(self, workload, small_config, tmp_path):
        a, b, at_a, at_b = workload
        reference, full_report, _ = run(at_a, at_b, small_config, tmp_path)
        # Simulate a crash that lost the last three flushed records.
        survivors = pair_records(tmp_path)
        for record in survivors[-3:]:
            record.unlink()
        resumed, report, _ = run(at_a, at_b, small_config, tmp_path, resume=True)
        assert report.pairs_executed == 3
        assert report.failure.pairs_resumed == full_report.pairs_executed - 3
        assert np.array_equal(resumed.to_dense(), reference.to_dense())

    def test_flush_interval_batches_records(self, workload, small_config, tmp_path):
        _, _, at_a, at_b = workload
        _, report, store = run(at_a, at_b, small_config, tmp_path, flush=4)
        total = report.pairs_executed
        assert store.records_written == total
        # One flush per full batch plus at most one final drain.
        assert store.flushes <= total // 4 + 1
        assert len(pair_records(tmp_path)) == total

    def test_fresh_run_clears_stale_journal(self, workload, small_config, tmp_path):
        _, _, at_a, at_b = workload
        _, first_report, _ = run(at_a, at_b, small_config, tmp_path)
        _, second_report, _ = run(at_a, at_b, small_config, tmp_path, resume=False)
        # Without --resume the journal is rebuilt, never trusted.
        assert second_report.pairs_executed == first_report.pairs_executed
        assert second_report.failure.pairs_resumed == 0
        assert len(pair_records(tmp_path)) == second_report.pairs_executed


class TestJournalValidation:
    def test_plan_mismatch_raises(self, workload, rng, small_config, tmp_path):
        _, _, at_a, at_b = workload
        run(at_a, at_b, small_config, tmp_path)
        other = build_at_matrix(
            COOMatrix.from_dense(heterogeneous_array(rng, 72, 88, background=0.2)),
            small_config,
        )
        with pytest.raises(PlanMismatchError, match="different plan"):
            run(at_a, other, small_config, tmp_path, resume=True)

    def test_tampered_record_fails_its_crc(self, workload, small_config, tmp_path):
        _, _, at_a, at_b = workload
        run(at_a, at_b, small_config, tmp_path)
        target = next(
            record
            for record in pair_records(tmp_path)
            if self._tamper_payload(record)
        )
        assert target is not None
        with pytest.raises(IntegrityError, match="CRC-32C"):
            run(at_a, at_b, small_config, tmp_path, resume=True)

    @staticmethod
    def _tamper_payload(record: Path) -> bool:
        """Flip one payload value while keeping the archive readable."""
        with np.load(record, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        for name, array in arrays.items():
            if name != "meta" and array.size:
                tampered = array.copy()
                tampered.ravel()[0] += 1
                arrays[name] = tampered
                np.savez_compressed(record, **arrays)
                return True
        return False

    def test_unreadable_record_raises(self, workload, small_config, tmp_path):
        _, _, at_a, at_b = workload
        run(at_a, at_b, small_config, tmp_path)
        pair_records(tmp_path)[0].write_bytes(b"not a zip archive")
        with pytest.raises(IntegrityError, match="unreadable"):
            run(at_a, at_b, small_config, tmp_path, resume=True)

    def test_garbage_manifest_raises(self, workload, small_config, tmp_path):
        _, _, at_a, at_b = workload
        run(at_a, at_b, small_config, tmp_path)
        (tmp_path / "MANIFEST.json").write_text("{oops", encoding="utf-8")
        with pytest.raises(IntegrityError, match="manifest"):
            run(at_a, at_b, small_config, tmp_path, resume=True)

    def test_unsupported_manifest_version_raises(
        self, workload, small_config, tmp_path
    ):
        _, _, at_a, at_b = workload
        run(at_a, at_b, small_config, tmp_path)
        manifest_path = tmp_path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(IntegrityError, match="unsupported layout"):
            run(at_a, at_b, small_config, tmp_path, resume=True)


class TestParallelCheckpoint:
    def test_parallel_run_resumes_bit_identical(
        self, workload, small_config, tmp_path
    ):
        a, b, at_a, at_b = workload
        topology = SystemTopology(sockets=2, cores_per_socket=1)
        store = CheckpointStore(tmp_path)
        options = MultiplyOptions(checkpoint=store, checkpoint_flush_pairs=2)
        first, first_report = parallel_atmult(
            at_a, at_b, topology=topology, config=small_config, options=options
        )
        np.testing.assert_allclose(first.to_dense(), a @ b, atol=1e-10)
        assert store.records_written == first_report.pairs_executed > 0

        resume_store = CheckpointStore(tmp_path, resume=True)
        resume_options = MultiplyOptions(checkpoint=resume_store)
        second, second_report = parallel_atmult(
            at_a,
            at_b,
            topology=topology,
            config=small_config,
            options=resume_options,
        )
        assert second_report.pairs_executed == 0
        assert second_report.failure.pairs_resumed == first_report.pairs_executed
        assert np.array_equal(second.to_dense(), first.to_dense())
