"""Tests for the resilience subsystem."""
