"""Metrics registry: instrument semantics and the null instruments."""

from __future__ import annotations

import threading

import pytest

from repro.observe import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)
from repro.observe import session as observe_session


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("k")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("k") == 3.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.0)
        assert registry.value("g") == 7.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1.0, 2.0, 4.0):
            histogram.observe(value)
        payload = histogram.as_dict()
        assert payload["count"] == 3
        assert payload["min"] == 1.0
        assert payload["max"] == 4.0
        assert payload["mean"] == pytest.approx(7.0 / 3.0)
        # log2 buckets: ceil(log2(1))=0, ceil(log2(2))=1, ceil(log2(4))=2
        assert payload["log2_buckets"] == {"0": 1, "1": 1, "2": 1}

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_as_dict_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(0.5)
        payload = registry.as_dict()
        assert list(payload) == ["a", "b"]
        assert payload["a"]["type"] == "gauge"
        assert payload["b"]["type"] == "counter"

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def bump() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("n") == 4000


class TestDisabledPath:
    def test_ambient_helpers_return_null_singletons(self):
        assert observe_session.current() is None
        assert observe_session.counter("whatever") is NULL_COUNTER
        assert observe_session.gauge("whatever") is NULL_GAUGE
        assert observe_session.histogram("whatever") is NULL_HISTOGRAM

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(1.0)
        NULL_HISTOGRAM.observe(0.5)
