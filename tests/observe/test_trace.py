"""Tracer: nesting, thread identity, and the strict no-op path."""

from __future__ import annotations

import contextlib
import threading

from repro.observe import NULL_SPAN, Tracer
from repro.observe import session as observe_session
from repro.observe.trace import _NullSpan


class TestSpanNesting:
    def test_nested_spans_link_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("middle"), tracer.span("inner"):
            pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["middle"].parent_id == spans["outer"].span_id
        assert spans["inner"].parent_id == spans["middle"].span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["first"].parent_id == spans["root"].span_id
        assert spans["second"].parent_id == spans["root"].span_id

    def test_span_records_duration_and_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        (span,) = tracer.spans()
        assert span.end is not None
        assert span.end >= span.start
        assert span.duration >= 0.0

    def test_roots_children_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("kid"):
                pass
            with tracer.span("kid"):
                pass
        (root,) = tracer.roots()
        assert root.name == "root"
        assert [s.name for s in tracer.children(root)] == ["kid", "kid"]
        assert len(tracer.find("kid")) == 2

    def test_annotate_via_context(self):
        tracer = Tracer()
        with tracer.span("k", "kernel", {"ti": 1}) as span:
            span.annotate("nnz", 42)
        (finished,) = tracer.spans()
        assert finished.attrs == {"ti": 1, "nnz": 42}
        assert finished.category == "kernel"

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with contextlib.suppress(ValueError), tracer.span("fails"):
            raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.end is not None


class TestThreadSeparation:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            with tracer.span(label):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",), name=f"worker-{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 2
        # Concurrent spans on different threads must not nest into each other.
        assert all(span.parent_id is None for span in spans)
        assert {span.thread_name for span in spans} == {"worker-0", "worker-1"}


class TestDisabledPath:
    def test_maybe_span_returns_shared_null_singleton(self):
        assert observe_session.current() is None
        assert observe_session.maybe_span("anything") is NULL_SPAN
        assert observe_session.maybe_span("other", "kernel") is NULL_SPAN

    def test_null_span_is_reusable_and_inert(self):
        with NULL_SPAN as span:
            span.annotate("ignored", 1)
        with NULL_SPAN:
            pass
        assert isinstance(NULL_SPAN, _NullSpan)

    def test_tracer_span_helper_none_observation(self):
        assert observe_session.tracer_span(None, "x") is NULL_SPAN
