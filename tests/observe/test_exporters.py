"""Exporter round-trips: emit a real trace, parse it back, check the tree."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import (
    COOMatrix,
    SystemTopology,
    atmult,
    build_at_matrix,
    observe,
    parallel_atmult,
    to_chrome_trace,
    to_json_dict,
    to_text_summary,
    write_chrome_trace,
    write_json,
)
from repro.observe import spans_from_chrome_trace

from ..conftest import heterogeneous_array


@pytest.fixture
def traced_parallel_run(rng, small_config):
    """One parallel multiplication under observation, plus the numpy oracle."""
    array = heterogeneous_array(rng, 96, 96, background=0.05)
    matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
    topology = SystemTopology(sockets=4)
    with observe() as obs:
        result, report = parallel_atmult(
            matrix, matrix, topology=topology, config=small_config
        )
    return obs, report, result, array


class TestChromeTraceRoundTrip:
    def test_spans_cover_all_phases(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        document = to_chrome_trace(obs)
        parsed = spans_from_chrome_trace(document)
        names = {span.name for span in parsed}
        assert {"estimate", "water_level", "pair_loop", "pair", "optimize"} <= names
        # at least one kernel span (name ends in _gemm)
        assert any(name.endswith("_gemm") for name in names)

    def test_round_trip_preserves_span_tree(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        parsed = spans_from_chrome_trace(to_chrome_trace(obs))
        original = sorted(obs.tracer.spans(), key=lambda s: s.span_id)
        assert len(parsed) == len(original)
        for before, after in zip(original, parsed, strict=True):
            assert after.span_id == before.span_id
            assert after.name == before.name
            assert after.parent_id == before.parent_id
            assert after.thread_id == before.thread_id
            assert after.thread_name == before.thread_name
            assert after.start == pytest.approx(before.start, abs=1e-6)
            assert after.duration == pytest.approx(before.duration, abs=1e-6)

    def test_pair_spans_ran_on_multiple_worker_threads(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        parsed = spans_from_chrome_trace(to_chrome_trace(obs))
        pair_threads = {s.thread_id for s in parsed if s.name == "pair"}
        assert len(pair_threads) > 1
        team_names = {
            s.thread_name for s in parsed if s.thread_name.startswith("team")
        }
        assert len(team_names) > 1

    def test_kernel_spans_nest_under_pairs(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        spans = {s.span_id: s for s in obs.tracer.spans()}
        kernel_spans = [s for s in spans.values() if s.category == "kernel"]
        assert kernel_spans
        for span in kernel_spans:
            assert span.parent_id is not None
            assert spans[span.parent_id].name == "pair"

    def test_timestamps_are_microseconds(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        document = to_chrome_trace(obs)
        for event, span in zip(document["traceEvents"], obs.tracer.spans(), strict=True):
            assert event["ts"] == pytest.approx(span.start * 1e6)
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            break

    def test_thread_metadata_events_present(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        document = to_chrome_trace(obs)
        metadata = [
            e for e in document["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        ]
        assert metadata
        assert all(e["args"]["name"] for e in metadata)

    def test_write_chrome_trace_is_valid_json(self, traced_parallel_run, tmp_path):
        obs, _, _, _ = traced_parallel_run
        path = tmp_path / "trace.json"
        write_chrome_trace(obs, str(path))
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_result_still_correct_under_observation(self, traced_parallel_run):
        _, _, result, array = traced_parallel_run
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-10)


class TestJsonExport:
    def test_json_export_contains_all_sections(self, traced_parallel_run):
        obs, report, _, _ = traced_parallel_run
        payload = to_json_dict(obs)
        assert payload["format"] == "repro-observation"
        assert payload["version"] == 1
        assert payload["spans"]
        assert payload["metrics"]
        assert payload["cost_accuracy"]["summary"]
        # per-kernel residuals present for every counted kernel
        for kernel, accuracy in payload["cost_accuracy"]["summary"].items():
            assert kernel in report.kernel_counts
            assert accuracy["count"] > 0
            assert "geometric_mean_ratio" in accuracy
            assert "mean_abs_relative_residual" in accuracy

    def test_json_export_serializes_to_stream(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        stream = io.StringIO()
        write_json(obs, stream)
        parsed = json.loads(stream.getvalue())
        assert parsed["format"] == "repro-observation"

    def test_worker_busy_metrics_recorded(self, traced_parallel_run):
        obs, report, _, _ = traced_parallel_run
        busy_names = [
            name for name in obs.metrics.names()
            if name.startswith("worker.busy_seconds.")
        ]
        assert busy_names
        for name in busy_names:
            worker = name.removeprefix("worker.busy_seconds.")
            assert report.worker_busy_seconds[worker] == pytest.approx(
                obs.metrics.value(name)
            )


class TestTextSummary:
    def test_text_summary_sections(self, traced_parallel_run):
        obs, _, _, _ = traced_parallel_run
        text = to_text_summary(obs)
        assert "spans (total seconds, by name):" in text
        assert "metrics:" in text
        assert "cost-model accuracy" in text

    def test_empty_observation_summary(self):
        with observe() as obs:
            pass
        text = to_text_summary(obs)
        assert "spans: none recorded" in text


class TestSequentialTrace:
    def test_sequential_atmult_records_expected_phases(self, rng, small_config):
        array = heterogeneous_array(rng, 64, 64, background=0.05)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        with observe() as obs:
            _, report = atmult(matrix, matrix, config=small_config)
        names = {s.name for s in obs.tracer.spans()}
        assert {"estimate", "water_level", "pair", "optimize"} <= names
        assert report.observation is obs
        # cost accuracy recorded one sample per dispatched kernel product
        assert len(obs.cost_accuracy) == sum(report.kernel_counts.values())
