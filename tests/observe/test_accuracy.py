"""Cost-accuracy tracker: ratios, residuals, and aggregation."""

from __future__ import annotations

import math

import pytest

from repro.observe import CostAccuracyTracker, CostSample


class TestCostSample:
    def test_ratio_and_residual(self):
        sample = CostSample("ddd_gemm", predicted_seconds=2.0, measured_seconds=3.0)
        assert sample.ratio == pytest.approx(1.5)
        assert sample.relative_residual == pytest.approx(0.5)

    def test_zero_prediction_is_infinite(self):
        sample = CostSample("ddd_gemm", predicted_seconds=0.0, measured_seconds=1.0)
        assert math.isinf(sample.ratio)
        assert math.isinf(sample.relative_residual)


class TestTracker:
    def test_per_kernel_summary(self):
        tracker = CostAccuracyTracker()
        tracker.record("ddd_gemm", 1.0, 2.0)
        tracker.record("ddd_gemm", 1.0, 0.5)
        tracker.record("spspsp_gemm", 4.0, 4.0)
        summary = tracker.summary()
        assert set(summary) == {"ddd_gemm", "spspsp_gemm"}
        ddd = summary["ddd_gemm"]
        assert ddd.count == 2
        assert ddd.mean_ratio == pytest.approx(1.25)
        # geometric mean of 2.0 and 0.5 is exactly 1.0
        assert ddd.geometric_mean_ratio == pytest.approx(1.0)
        assert summary["spspsp_gemm"].mean_abs_relative_residual == pytest.approx(0.0)

    def test_ratio_by_kernel_uses_geometric_mean(self):
        tracker = CostAccuracyTracker()
        tracker.record("spdd_gemm", 1.0, 4.0)
        tracker.record("spdd_gemm", 1.0, 1.0)
        assert tracker.ratio_by_kernel()["spdd_gemm"] == pytest.approx(2.0)

    def test_samples_filter_and_len(self):
        tracker = CostAccuracyTracker()
        tracker.record("a", 1.0, 1.0)
        tracker.record("b", 1.0, 1.0)
        assert len(tracker) == 2
        assert [s.kernel for s in tracker.samples("a")] == ["a"]
        assert tracker.kernels() == ["a", "b"]

    def test_as_dict_round_trips_counts(self):
        tracker = CostAccuracyTracker()
        tracker.record("ddd_gemm", 1.0, 2.0)
        payload = tracker.as_dict()
        assert payload["summary"]["ddd_gemm"]["count"] == 1
        assert payload["samples"][0]["measured_seconds"] == 2.0
