"""Overhead guard: the disabled observability path must stay a no-op.

The contract (docs/OBSERVABILITY.md): with no active session, every hook
site reduces to one module-global read plus a ``None`` check, handing
back shared singletons — no span objects, no metric lookups, no kernel
name strings are built per call.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels.registry as registry
from repro import observe
from repro.formats.dense import DenseMatrix
from repro.kernels.accumulator import make_accumulator
from repro.kernels.window import Window
from repro.kinds import StorageKind
from repro.observe import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_SPAN
from repro.observe import session as observe_session


def _run_one_kernel() -> None:
    a = DenseMatrix(np.ones((8, 8)))
    b = DenseMatrix(np.ones((8, 8)))
    out = make_accumulator(StorageKind.DENSE, 8, 8)
    registry.run_tile_product(a, Window(0, 8, 0, 8), b, Window(0, 8, 0, 8), out)


class TestNullSingletons:
    def test_every_disabled_hook_returns_the_shared_singleton(self):
        assert observe_session.current() is None
        # Identity (not just equality): the same object every call means
        # zero allocations on the hot path, by construction.
        for _ in range(3):
            assert observe_session.maybe_span("kernel") is NULL_SPAN
            assert observe_session.tracer_span(None, "pair") is NULL_SPAN
            assert observe_session.counter("c") is NULL_COUNTER
            assert observe_session.gauge("g") is NULL_GAUGE
            assert observe_session.histogram("h") is NULL_HISTOGRAM

    def test_null_span_context_is_reentrant(self):
        with NULL_SPAN, NULL_SPAN:
            NULL_SPAN.annotate("k", "v")


class TestDisabledKernelDispatch:
    def test_disabled_dispatch_builds_no_kernel_name(self, monkeypatch):
        """With no session, run_tile_product must not reach kernel_name.

        Building the name string (and the derived metric name) is the
        allocation-heavy part of the instrumented path; the disabled
        branch must skip it entirely.
        """
        def _fail(*args, **kwargs):
            raise AssertionError("kernel_name called on the disabled path")

        monkeypatch.setattr(registry, "kernel_name", _fail)
        assert observe_session.current() is None
        _run_one_kernel()  # would raise if the disabled path built names

    def test_enabled_dispatch_does_build_kernel_name(self, monkeypatch):
        """Sanity check for the guard above: the patched hook IS reached
        as soon as a session is active."""
        def _fail(*args, **kwargs):
            raise AssertionError("reached")

        monkeypatch.setattr(registry, "kernel_name", _fail)
        with observe(), pytest.raises(AssertionError, match="reached"):
            _run_one_kernel()

    def test_disabled_dispatch_records_nothing(self):
        assert observe_session.current() is None
        _run_one_kernel()
        # a later session must start empty — nothing leaked from the
        # untraced call into process state
        with observe() as obs:
            pass
        assert len(obs.tracer) == 0
        assert obs.metrics.names() == []
        assert len(obs.cost_accuracy) == 0
