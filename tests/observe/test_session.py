"""Session activation semantics: ambient slot, nesting, explicit observers."""

from __future__ import annotations

import contextlib
import threading

from repro import COOMatrix, atmult, build_at_matrix, observe
from repro.observe import Observation, activate, current
from repro.observe import session as observe_session

from ..conftest import heterogeneous_array


class TestActivation:
    def test_observe_installs_and_restores(self):
        assert current() is None
        with observe() as obs:
            assert current() is obs
        assert current() is None

    def test_activate_nests_and_restores_previous(self):
        outer = Observation()
        inner = Observation()
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_restores_on_exception(self):
        with contextlib.suppress(RuntimeError), observe():
            raise RuntimeError("boom")
        assert current() is None

    def test_resolve_with_explicit_observer_activates_it(self):
        observer = Observation()
        with observe_session.resolve(observer) as obs:
            assert obs is observer
            assert current() is observer
        assert current() is None

    def test_resolve_without_observer_yields_ambient(self):
        with observe() as ambient, observe_session.resolve(None) as obs:
            assert obs is ambient
        with observe_session.resolve(None) as obs:
            assert obs is None

    def test_worker_threads_see_ambient_session(self):
        seen: list[Observation | None] = []
        with observe() as obs:
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join()
        assert seen == [obs]


class TestObserverKeyword:
    def test_explicit_observer_receives_instrumentation(self, rng, small_config):
        array = heterogeneous_array(rng, 64, 64, background=0.05)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        observer = Observation()
        _, report = atmult(matrix, matrix, config=small_config, observer=observer)
        assert report.observation is observer
        assert len(observer.tracer) > 0
        assert observer.metrics.names()
        # the session was deactivated again after the call
        assert current() is None

    def test_no_observer_and_no_session_records_nothing(self, rng, small_config):
        array = heterogeneous_array(rng, 64, 64, background=0.05)
        matrix = build_at_matrix(COOMatrix.from_dense(array), small_config)
        _, report = atmult(matrix, matrix, config=small_config)
        assert report.observation is None
