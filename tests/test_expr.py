"""Tests for the lazy expression layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import COOMatrix, SystemConfig, build_at_matrix
from repro.errors import ShapeError
from repro.expr import M, Product

from .conftest import as_csr, random_sparse_array

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def leaf(array):
    return M(build_at_matrix(COOMatrix.from_dense(array), CONFIG))


@pytest.fixture
def arrays(rng):
    a = random_sparse_array(rng, 24, 30, 0.3)
    b = random_sparse_array(rng, 30, 18, 0.3)
    c = random_sparse_array(rng, 18, 24, 0.3)
    return a, b, c


class TestComposition:
    def test_product(self, arrays):
        a, b, _ = arrays
        result = (leaf(a) @ leaf(b)).evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)

    def test_three_factor_chain_flattens(self, arrays):
        a, b, c = arrays
        expr = leaf(a) @ leaf(b) @ leaf(c)
        assert isinstance(expr, Product)
        assert len(expr._chain()) == 3
        result = expr.evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a @ b @ c, atol=1e-8)

    def test_sum_and_scale(self, arrays):
        a, _, _ = arrays
        expr = 2.0 * leaf(a) + leaf(a) * 0.5
        result = expr.evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), 2.5 * a, atol=1e-10)

    def test_subtraction(self, arrays):
        a, _, _ = arrays
        result = (leaf(a) - leaf(a)).evaluate(config=CONFIG)
        assert result.nnz == 0

    def test_shape_checking(self, arrays):
        a, b, _ = arrays
        with pytest.raises(ShapeError):
            leaf(a) @ leaf(a)
        with pytest.raises(ShapeError):
            leaf(a) + leaf(b)

    def test_plain_operands_auto_wrapped(self, arrays):
        a, b, _ = arrays
        result = (M(as_csr(a)) @ as_csr(b)).evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)


class TestTransposeNormalization:
    def test_simple_transpose(self, arrays):
        a, _, _ = arrays
        result = leaf(a).T.evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), a.T)

    def test_double_transpose_cancels(self, arrays):
        a, _, _ = arrays
        expr = leaf(a).T.T
        assert "^T" not in expr.plan(config=CONFIG)
        np.testing.assert_allclose(expr.evaluate(config=CONFIG).to_dense(), a)

    def test_product_transpose_pushed_down(self, arrays):
        a, b, _ = arrays
        expr = (leaf(a) @ leaf(b)).T
        plan = expr.plan(config=CONFIG)
        # (A B)^T becomes B^T @ A^T: leaf transposes, reversed order.
        assert plan.count("^T") == 2
        result = expr.evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), (a @ b).T, atol=1e-9)

    def test_gram_expression(self, arrays):
        a, _, _ = arrays
        gram = (leaf(a).T @ leaf(a)).evaluate(config=CONFIG)
        np.testing.assert_allclose(gram.to_dense(), a.T @ a, atol=1e-9)

    def test_sum_transpose_distributes(self, arrays):
        a, _, _ = arrays
        expr = (leaf(a) + leaf(a)).T
        np.testing.assert_allclose(
            expr.evaluate(config=CONFIG).to_dense(), 2 * a.T, atol=1e-10
        )

    def test_scaled_transpose(self, arrays):
        a, _, _ = arrays
        expr = (3.0 * leaf(a)).T
        np.testing.assert_allclose(
            expr.evaluate(config=CONFIG).to_dense(), 3.0 * a.T, atol=1e-10
        )

    def test_nested_scalars_collapse(self, arrays):
        a, _, _ = arrays
        expr = (2.0 * (3.0 * leaf(a)))._pushdown(False)
        assert "6.0 *" in expr._describe()


class TestExprProperties:
    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_random_expressions_match_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 24))
        a = random_sparse_array(rng, n, n, 0.35)
        b = random_sparse_array(rng, n, n, 0.35)
        expr = (M(as_csr(a)) @ M(as_csr(b)).T + 0.5 * M(as_csr(a))).T
        expected = (a @ b.T + 0.5 * a).T
        result = expr.evaluate(config=CONFIG)
        np.testing.assert_allclose(result.to_dense(), expected, atol=1e-9)
