"""Tests for the repro-check linter: rules, suppression, and the CLI.

Each RPR rule gets a paired good/bad fixture under ``fixtures/``; the
bad fixture seeds known violations and the tests assert the exact rule
code and line number for every one of them.  Fixtures are fed through
``check_source`` with virtual repo-relative paths so path-scoped rules
(RPR002/004/005/006) fire without the files living inside src/repro.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.repro_check.core import check_paths, check_source, iter_python_files
from tools.repro_check.rules import ALL_RULES, RULES_BY_CODE
from tools.repro_check.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def run_rule(code: str, name: str, path: str) -> list:
    return check_source(fixture(name), path, [RULES_BY_CODE[code]])


class TestKernelRegistryRule:
    def test_complete_registry_is_clean(self):
        assert run_rule("RPR001", "rpr001_good.py", "registry.py") == []

    def test_missing_combinations_reported_at_registry_anchor(self):
        violations = run_rule("RPR001", "rpr001_bad.py", "registry.py")
        assert [(v.code, v.line) for v in violations] == [("RPR001", 11)]
        assert "missing 2 of 8" in violations[0].message
        assert "densexdensexsparse" in violations[0].message
        assert "densexdensexdense" in violations[0].message

    def test_real_registry_is_complete(self):
        source = (REPO_ROOT / "src/repro/kernels/registry.py").read_text(
            encoding="utf-8"
        )
        rule = RULES_BY_CODE["RPR001"]
        assert check_source(source, "src/repro/kernels/registry.py", [rule]) == []


class TestDeterminismRule:
    PATH = "src/repro/engine/plan.py"

    def test_seeded_rng_and_sorted_iteration_are_clean(self):
        assert run_rule("RPR002", "rpr002_good.py", self.PATH) == []

    def test_each_nondeterminism_source_is_flagged(self):
        violations = run_rule("RPR002", "rpr002_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [
            ("RPR002", 10),  # time.time()
            ("RPR002", 11),  # random.random()
            ("RPR002", 12),  # np.random.rand()
            ("RPR002", 13),  # id()-keyed dict comprehension
            ("RPR002", 14),  # iteration over a set
        ]
        assert "wall clock" in violations[0].message
        assert "ambient RNG" in violations[1].message
        assert "default_rng" in violations[2].message
        assert "id()-keyed" in violations[3].message
        assert "sorted" in violations[4].message

    def test_out_of_scope_path_is_skipped(self):
        source = fixture("rpr002_bad.py")
        rule = RULES_BY_CODE["RPR002"]
        assert check_source(source, "src/repro/solve.py", [rule]) == []
        forced = check_source(
            source, "src/repro/solve.py", [rule], honor_scope=False
        )
        assert len(forced) == 5


class TestLockDisciplineRule:
    def test_guarded_and_locked_helpers_are_clean(self):
        assert run_rule("RPR003", "rpr003_good.py", "cache.py") == []

    def test_unguarded_mutations_are_flagged(self):
        violations = run_rule("RPR003", "rpr003_bad.py", "cache.py")
        assert [(v.code, v.line) for v in violations] == [
            ("RPR003", 13),  # self._hits += 1 before the with block
            ("RPR003", 18),  # subscript assignment in put()
            ("RPR003", 21),  # .update() call in note()
        ]
        assert "Cache.get mutates self._hits" in violations[0].message
        assert "'with self._lock'" in violations[0].message
        assert "Cache.put mutates self._entries" in violations[1].message
        assert "Cache.note mutates self._entries" in violations[2].message


class TestLegacyKeywordRule:
    PATH = "src/repro/engine/helper.py"

    def test_options_object_is_clean(self):
        assert run_rule("RPR004", "rpr004_good.py", self.PATH) == []

    def test_legacy_keywords_are_flagged(self):
        violations = run_rule("RPR004", "rpr004_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [
            ("RPR004", 5),  # atmult(..., memory_limit_bytes=...)
            ("RPR004", 6),  # multiply_chain(..., use_estimation=...)
        ]
        assert "atmult(memory_limit_bytes=...)" in violations[0].message
        assert "multiply_chain(use_estimation=...)" in violations[1].message

    def test_rule_only_applies_inside_src(self):
        source = fixture("rpr004_bad.py")
        rule = RULES_BY_CODE["RPR004"]
        assert check_source(source, "tests/test_legacy.py", [rule]) == []


class TestSpanCoverageRule:
    PATH = "src/repro/kernels/fake.py"

    def test_span_wrapped_loop_is_clean(self):
        assert run_rule("RPR005", "rpr005_good.py", self.PATH) == []

    def test_uncovered_pair_loop_is_flagged_at_the_loop(self):
        violations = run_rule("RPR005", "rpr005_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [("RPR005", 6)]
        assert "execute_pairs" in violations[0].message
        assert "span" in violations[0].message

    def test_private_functions_are_exempt(self):
        source = fixture("rpr005_bad.py").replace(
            "def execute_pairs", "def _execute_pairs"
        )
        rule = RULES_BY_CODE["RPR005"]
        assert check_source(source, self.PATH, [rule]) == []


class TestAnnotationRule:
    PATH = "src/repro/util.py"

    def test_fully_annotated_module_is_clean(self):
        assert run_rule("RPR006", "rpr006_good.py", self.PATH) == []

    def test_missing_params_and_return_are_separate_violations(self):
        violations = run_rule("RPR006", "rpr006_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [
            ("RPR006", 4),  # scale(): unannotated parameters
            ("RPR006", 8),  # shift(): missing return annotation
        ]
        assert "parameter annotations: value, factor" in violations[0].message
        assert "return annotation" in violations[1].message


class TestAtomicWriteRule:
    PATH = "src/repro/formats/store.py"

    def test_reads_and_atomic_writes_are_clean(self):
        assert run_rule("RPR007", "rpr007_good.py", self.PATH) == []

    def test_each_direct_write_flavor_is_flagged(self):
        violations = run_rule("RPR007", "rpr007_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [
            ("RPR007", 8),  # open(path, "w")
            ("RPR007", 13),  # Path(path).open(mode="wb")
            ("RPR007", 18),  # Path(path).write_text(...)
            ("RPR007", 22),  # open(path, mode="a")
        ]
        assert "open(..., 'w')" in violations[0].message
        assert "atomic_write" in violations[0].message
        assert "'wb'" in violations[1].message
        assert "atomic_write_text" in violations[2].message
        assert "'a'" in violations[3].message

    def test_ioutil_itself_is_exempt(self):
        source = fixture("rpr007_bad.py")
        rule = RULES_BY_CODE["RPR007"]
        assert check_source(source, "src/repro/ioutil.py", [rule]) == []

    def test_rule_only_applies_inside_src(self):
        source = fixture("rpr007_bad.py")
        rule = RULES_BY_CODE["RPR007"]
        assert check_source(source, "tests/test_store.py", [rule]) == []


class TestProcessBoundaryRule:
    PATH = "src/repro/core/parallel.py"

    def test_threads_and_lazy_supervisor_import_are_clean(self):
        assert run_rule("RPR008", "rpr008_good.py", self.PATH) == []

    def test_each_process_management_flavor_is_flagged(self):
        violations = run_rule("RPR008", "rpr008_bad.py", self.PATH)
        assert [(v.code, v.line) for v in violations] == [
            ("RPR008", 4),  # import multiprocessing
            ("RPR008", 5),  # import multiprocessing.pool
            ("RPR008", 6),  # from multiprocessing import Process
            ("RPR008", 7),  # from concurrent.futures import ProcessPoolExecutor
            ("RPR008", 17),  # concurrent.futures.ProcessPoolExecutor attribute
        ]
        assert "supervisor" in violations[0].message
        assert "reassigned" in violations[0].message

    def test_the_supervisor_itself_is_exempt(self):
        source = fixture("rpr008_bad.py")
        rule = RULES_BY_CODE["RPR008"]
        assert (
            check_source(
                source, "src/repro/resilience/supervisor.py", [rule]
            )
            == []
        )

    def test_rule_only_applies_inside_src(self):
        source = fixture("rpr008_bad.py")
        rule = RULES_BY_CODE["RPR008"]
        assert check_source(source, "tests/test_parallel.py", [rule]) == []

    def test_real_supervisor_is_the_only_importer(self):
        result = check_paths(
            [REPO_ROOT / "src"],
            [RULES_BY_CODE["RPR008"]],
            base=REPO_ROOT,
        )
        assert result.all_violations == []


class TestSuppression:
    def test_same_line_disable_comment_drops_the_violation(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def build():\n"
            "    a = time.time()  # repro-lint: disable=RPR002\n"
            "    b = time.time()\n"
            "    return a, b\n"
        )
        rule = RULES_BY_CODE["RPR002"]
        violations = check_source(source, "src/repro/engine/plan.py", [rule])
        assert [(v.code, v.line) for v in violations] == [("RPR002", 6)]

    def test_disable_lists_multiple_codes(self):
        source = (
            "def run(atmult, a, b):  # repro-lint: disable=RPR006, RPR004\n"
            "    return atmult(a, b, workers=2)\n"
        )
        rules = [RULES_BY_CODE["RPR004"], RULES_BY_CODE["RPR006"]]
        violations = check_source(source, "src/repro/engine/x.py", rules)
        # RPR006 (anchored at line 1) is suppressed; RPR004 fires on
        # line 2 where no disable comment exists.
        assert [(v.code, v.line) for v in violations] == [("RPR004", 2)]

    def test_suppressed_count_surfaces_in_check_paths(self, tmp_path):
        target = tmp_path / "src" / "repro" / "engine" / "plan.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n"
            "STAMP = time.time()  # repro-lint: disable=RPR002\n",
            encoding="utf-8",
        )
        result = check_paths([tmp_path], ALL_RULES, base=tmp_path)
        assert result.suppressed == 1
        assert result.violations == []
        assert result.exit_code == 0

    def test_disable_inside_multiline_with_suppresses_first_line(self):
        # RPR007 anchors at the statement's first line (2); the disable
        # comment sits on a later line of the same multi-line header.
        source = (
            "def dump(path, data):\n"
            "    with open(\n"
            "        path,\n"
            '        "w",  # repro-lint: disable=RPR007\n'
            "    ) as handle:\n"
            "        handle.write(data)\n"
        )
        rule = RULES_BY_CODE["RPR007"]
        assert check_source(source, "src/repro/engine/x.py", [rule]) == []

    def test_disable_in_header_does_not_cover_the_body(self):
        source = (
            "def dump(path, data):\n"
            "    with open(\n"
            '        path, "w",  # repro-lint: disable=RPR007\n'
            "    ) as handle:\n"
            "        handle.write(data)\n"
            '    open(path, "a").write(data)\n'
        )
        rule = RULES_BY_CODE["RPR007"]
        violations = check_source(source, "src/repro/engine/x.py", [rule])
        # The with-statement is suppressed; the separate append on line 6
        # (inside the function body, outside the with header) still fires.
        assert [(v.code, v.line) for v in violations] == [("RPR007", 6)]

    def test_disable_file_suppresses_the_code_everywhere(self):
        source = (
            "# repro-lint: disable-file=RPR002\n"
            "import time\n"
            "A = time.time()\n"
            "B = time.time()\n"
        )
        rule = RULES_BY_CODE["RPR002"]
        assert check_source(source, "src/repro/engine/plan.py", [rule]) == []

    def test_disable_file_only_covers_the_listed_codes(self):
        source = (
            "# repro-lint: disable-file=RPR006\n"
            "import time\n"
            "A = time.time()\n"
        )
        rule = RULES_BY_CODE["RPR002"]
        violations = check_source(source, "src/repro/engine/plan.py", [rule])
        assert [(v.code, v.line) for v in violations] == [("RPR002", 3)]


class TestFileWalking:
    def test_fixtures_directories_are_never_scanned(self):
        files = iter_python_files([Path(__file__).parent])
        assert all("fixtures" not in path.parts for path in files)
        assert any(path.name == "test_repro_lint.py" for path in files)

    def test_explicit_file_argument_bypasses_directory_pruning(self):
        target = FIXTURES / "rpr006_bad.py"
        assert iter_python_files([target]) == [target]

    def test_unparsable_file_becomes_rpr000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        result = check_paths([bad], ALL_RULES, base=tmp_path)
        assert result.files_checked == 0
        assert [v.code for v in result.errors] == ["RPR000"]
        assert "does not parse" in result.errors[0].message
        assert result.exit_code == 1


class TestRepoIsClean:
    def test_src_tree_has_no_violations(self):
        result = check_paths([REPO_ROOT / "src"], ALL_RULES, base=REPO_ROOT)
        assert result.all_violations == []
        assert result.files_checked > 0


class TestCli:
    @pytest.fixture
    def bad_file(self, tmp_path):
        path = tmp_path / "cache.py"
        path.write_text(fixture("rpr003_bad.py"), encoding="utf-8")
        return path

    @pytest.fixture
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(fixture("rpr003_good.py"), encoding="utf-8")
        return path

    def test_clean_run_exits_zero_with_summary(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        out = capsys.readouterr().out
        assert "repro-check: 1 files, 0 violation(s)" in out

    def test_violations_exit_one_and_render_locations(self, bad_file, capsys):
        assert main([str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert ":13:" in out
        assert "3 violation(s)" in out

    def test_json_format_is_machine_readable(self, bad_file, capsys):
        assert main([str(bad_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        codes = [v["code"] for v in payload["violations"]]
        assert codes == ["RPR003", "RPR003", "RPR003"]
        assert [v["line"] for v in payload["violations"]] == [13, 18, 21]

    def test_select_limits_the_rule_set(self, bad_file, capsys):
        assert main([str(bad_file), "--select", "RPR006"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_select_unknown_code_aborts(self, bad_file):
        with pytest.raises(SystemExit, match="unknown rule code"):
            main([str(bad_file), "--select", "RPR999"])

    def test_list_rules_prints_the_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_statistics_appends_per_rule_counts(self, bad_file, capsys):
        assert main([str(bad_file), "--statistics"]) == 1
        assert "RPR003: 3" in capsys.readouterr().out

    def test_parse_error_exits_one_as_rpr000(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        assert main([str(broken)]) == 1
        assert "RPR000" in capsys.readouterr().out

    def test_json_payload_reports_baselined_count(self, bad_file, capsys):
        assert main([str(bad_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == 0

    def test_github_format_emits_error_annotations(self, bad_file, capsys):
        assert main([str(bad_file), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "line=13" in out
        assert "title=RPR003" in out

    def test_list_rules_includes_project_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR009", "RPR010", "RPR011", "RPR012"):
            assert code in out

    def test_module_entry_point_runs(self, tmp_path):
        import subprocess
        import sys

        clean = tmp_path / "clean.py"
        clean.write_text(fixture("rpr003_good.py"), encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_check", str(clean)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0
        assert "0 violation(s)" in proc.stdout


class TestBaselineFlow:
    @pytest.fixture
    def bad_file(self, tmp_path):
        path = tmp_path / "cache.py"
        path.write_text(fixture("rpr003_bad.py"), encoding="utf-8")
        return path

    def test_write_baseline_then_run_is_clean(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_file), "--write-baseline", str(baseline)]) == 0
        assert "wrote 3 finding(s)" in capsys.readouterr().out
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert len(payload["findings"]) == 3
        assert main([str(bad_file), "--baseline", str(baseline)]) == 0
        assert "3 baselined" in capsys.readouterr().out

    def test_new_finding_still_fails_with_baseline(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_file), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        extra = tmp_path / "fresh.py"
        extra.write_text(fixture("rpr003_bad.py"), encoding="utf-8")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "3 baselined" in out  # cache.py findings absorbed
        assert "RPR003" in out  # fresh.py findings still fail

    def test_stale_baseline_entries_are_reported_not_fatal(
        self, tmp_path, capsys
    ):
        clean = tmp_path / "clean.py"
        clean.write_text(fixture("rpr003_good.py"), encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "code": "RPR003",
                            "path": "gone.py",
                            "message": "no longer occurs",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert main([str(clean), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_baseline_file_exits_two(self, bad_file, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main([str(bad_file), "--baseline", str(missing)]) == 2
        assert "baseline not found" in capsys.readouterr().err

    def test_unsupported_baseline_version_exits_two(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"version": 99, "findings": []}), encoding="utf-8"
        )
        assert main([str(bad_file), "--baseline", str(baseline)]) == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_committed_baseline_matches_the_repo(self, capsys):
        # The committed baseline absorbs every finding the whole-program
        # rules currently produce over src/repro — no more, no less
        # (stale entries print a note but the gate stays green).
        assert (
            main(
                [
                    str(REPO_ROOT / "src"),
                    "--select",
                    "RPR009,RPR010,RPR011,RPR012",
                    "--baseline",
                    str(REPO_ROOT / ".repro-lint-baseline.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stale baseline entry" not in out
