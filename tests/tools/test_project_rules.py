"""Tests for the whole-program analyzer: index, dataflow and RPR009-012.

Each project rule gets a paired good/bad fixture *directory* under
``fixtures/`` — a miniature multi-module project — and the tests assert
the exact rule code and line for every seeded violation.  The index and
dataflow layers also get targeted unit coverage for the resolution
tricks the rules depend on (typed attributes, return-annotation chains,
module-global annotations).
"""

from __future__ import annotations

from pathlib import Path

from tools.repro_check.core import check_paths
from tools.repro_check.flow import (
    blocking_closure,
    effective_acquires,
    find_lock_cycles,
    lock_order_edges,
    summarize_project,
)
from tools.repro_check.graph import ProjectIndex, module_name_for
from tools.repro_check.project_rules import PROJECT_RULES, PROJECT_RULES_BY_CODE

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def project_fixture(name: str) -> ProjectIndex:
    root = FIXTURES / name
    sources = {
        path.relative_to(root).as_posix(): path.read_text(encoding="utf-8")
        for path in sorted(root.rglob("*.py"))
    }
    return ProjectIndex.from_sources(sources)


def run_project_rule(code: str, name: str) -> list:
    violations = PROJECT_RULES_BY_CODE[code].check_project(
        project_fixture(name)
    )
    return sorted(violations, key=lambda v: (v.path, v.line))


class TestProjectIndex:
    def test_module_names_follow_the_package_layout(self):
        assert module_name_for("src/repro/engine/cache.py") == "repro.engine.cache"
        assert module_name_for("src/repro/engine/__init__.py") == "repro.engine"
        assert module_name_for("helper.py") == "helper"

    def test_typed_attribute_resolves_cross_module_calls(self):
        index = project_fixture("rpr010_bad")
        summaries = summarize_project(index)
        submit = summaries["server.Service.submit"]
        callees = {c for call in submit.calls for c in call.callees}
        assert "store.JobStore.create" in callees

    def test_locks_carry_their_creation_sites(self):
        index = project_fixture("rpr009_bad")
        locks = index.all_locks()
        assert locks["alpha.Alpha._lock"].path == "alpha.py"
        assert locks["alpha.Alpha._lock"].reentrant is False

    def test_real_repo_indexes_every_module(self):
        from tools.repro_check.core import iter_python_files

        files = iter_python_files([REPO_ROOT / "src" / "repro"])
        index = ProjectIndex.from_files(files, base=REPO_ROOT)
        assert "repro.engine.cache" in index.modules
        assert "repro.engine.cache.PlanCache.get" in index.functions
        # The chained-call resolution the lock model depends on:
        # observe_session.counter(...).inc() -> Counter.inc.
        assert "repro.observe.metrics.Counter.inc" in index.functions

    def test_unresolvable_calls_have_no_callees(self):
        index = ProjectIndex.from_sources(
            {"a.py": "def f(x):\n    return x.mystery_method()\n"}
        )
        summaries = summarize_project(index)
        assert all(
            call.callees == () for call in summaries["a.f"].calls
        )


class TestFlowAnalyses:
    def test_effective_acquires_reaches_through_calls(self):
        index = project_fixture("rpr009_bad")
        summaries = summarize_project(index)
        acquires = effective_acquires(summaries)
        assert "beta.Beta._lock" in acquires["alpha.Alpha.ping"]

    def test_lock_order_edges_and_cycle_detection(self):
        index = project_fixture("rpr009_bad")
        summaries = summarize_project(index)
        edges = lock_order_edges(summaries, index.all_locks())
        pairs = {(e.held, e.acquired) for e in edges}
        assert ("alpha.Alpha._lock", "beta.Beta._lock") in pairs
        assert ("beta.Beta._lock", "alpha.Alpha._lock") in pairs
        cycles = find_lock_cycles(edges)
        assert len(cycles) == 1
        assert set(cycles[0]) == {"alpha.Alpha._lock", "beta.Beta._lock"}

    def test_consistent_order_has_no_cycle(self):
        index = project_fixture("rpr009_good")
        summaries = summarize_project(index)
        edges = lock_order_edges(summaries, index.all_locks())
        assert find_lock_cycles(edges) == []
        # The one-directional edge itself is still recorded.
        assert {(e.held, e.acquired) for e in edges} == {
            ("alpha.Alpha._lock", "beta.Beta._lock")
        }

    def test_blocking_closure_walks_sync_calls_only(self):
        index = project_fixture("rpr010_bad")
        summaries = summarize_project(index)
        closure = blocking_closure(summaries)
        descs = [desc for desc, _chain in closure["server.render"]]
        assert any("open()" in desc for desc in descs)


class TestLockOrderRule:
    def test_cycle_flagged_once_per_direction(self):
        violations = run_project_rule("RPR009", "rpr009_bad")
        assert [(v.code, v.path, v.line) for v in violations] == [
            ("RPR009", "alpha.py", 17),
            ("RPR009", "beta.py", 20),
        ]
        assert "lock-order cycle" in violations[0].message
        assert "Alpha._lock" in violations[0].message
        assert "Beta._lock" in violations[0].message

    def test_consistent_order_is_clean(self):
        assert run_project_rule("RPR009", "rpr009_good") == []

    def test_non_reentrant_self_acquisition_is_flagged(self):
        index = ProjectIndex.from_sources(
            {
                "solo.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Solo:\n"
                    "    def __init__(self) -> None:\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "    def outer(self) -> None:\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "\n"
                    "    def inner(self) -> None:\n"
                    "        with self._lock:\n"
                    "            pass\n"
                )
            }
        )
        violations = PROJECT_RULES_BY_CODE["RPR009"].check_project(index)
        assert [(v.code, v.line) for v in violations] == [("RPR009", 10)]
        assert "self-deadlocks" in violations[0].message

    def test_reentrant_lock_may_self_acquire(self):
        index = ProjectIndex.from_sources(
            {
                "solo.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Solo:\n"
                    "    def __init__(self) -> None:\n"
                    "        self._lock = threading.RLock()\n"
                    "\n"
                    "    def outer(self) -> None:\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "\n"
                    "    def inner(self) -> None:\n"
                    "        with self._lock:\n"
                    "            pass\n"
                )
            }
        )
        assert PROJECT_RULES_BY_CODE["RPR009"].check_project(index) == []


class TestAsyncBlockingRule:
    def test_each_blocking_flavor_is_flagged(self):
        violations = run_project_rule("RPR010", "rpr010_bad")
        assert [(v.code, v.line) for v in violations] == [
            ("RPR010", 20),
            ("RPR010", 21),
            ("RPR010", 24),
        ]
        assert "sync store method" in violations[0].message
        assert "time.sleep" in violations[1].message
        assert "open()" in violations[2].message
        assert "via server.render" in violations[2].message

    def test_executor_deferred_work_is_clean(self):
        assert run_project_rule("RPR010", "rpr010_good") == []


class TestDeterminismTaintRule:
    def test_taint_is_anchored_at_the_remote_sink(self):
        violations = run_project_rule("RPR011", "rpr011_bad")
        assert [(v.code, v.path, v.line) for v in violations] == [
            ("RPR011", "helper.py", 9),
            ("RPR011", "helper.py", 13),
        ]
        assert "time.time() reads the wall clock" in violations[0].message
        assert "plan.build_plan -> helper.stamp" in violations[0].message
        assert "set has no deterministic order" in violations[1].message

    def test_deterministic_helpers_are_clean(self):
        assert run_project_rule("RPR011", "rpr011_good") == []


class TestSharedStateRule:
    def test_unlocked_thread_writes_are_flagged(self):
        violations = run_project_rule("RPR012", "rpr012_bad")
        assert [(v.code, v.line) for v in violations] == [
            ("RPR012", 20),
            ("RPR012", 21),
        ]
        assert "Runner.total" in violations[0].message
        assert "worker.COUNTS" in violations[1].message
        assert "via Runner._run" in violations[1].message

    def test_locked_writes_are_clean(self):
        assert run_project_rule("RPR012", "rpr012_good") == []


class TestRepoIsCleanModuloBaseline:
    def test_project_rules_match_the_committed_baseline(self):
        from tools.repro_check.core import apply_baseline, load_baseline

        result = check_paths(
            [REPO_ROOT / "src"], PROJECT_RULES, base=REPO_ROOT
        )
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        stale = apply_baseline(result, baseline)
        assert result.violations == []
        assert stale == []
        assert result.baselined == sum(baseline.values())
