"""Thread-visible state mutated only under the owning lock."""

from __future__ import annotations

import threading

COUNTS: dict[str, int] = {}
_COUNTS_LOCK = threading.Lock()


class Runner:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0

    def start(self) -> threading.Thread:
        thread = threading.Thread(target=self._run)
        thread.start()
        return thread

    def _run(self) -> None:
        with self._lock:
            self.total += 1
            snapshot = self.total
        with _COUNTS_LOCK:
            COUNTS["runs"] = snapshot
