"""Blocking work correctly deferred to executor threads."""

from __future__ import annotations

import asyncio

from store import JobStore


def render(job_id: str) -> str:
    with open(job_id) as handle:
        return handle.read()


class Service:
    def __init__(self, root: str) -> None:
        self.store = JobStore(root)

    async def submit(self, job_id: str) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.store.create, job_id)

    async def result(self, job_id: str) -> str:
        return await asyncio.to_thread(render, job_id)
