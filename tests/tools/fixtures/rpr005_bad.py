"""RPR005 fixture: a public pair loop with no span anywhere."""


def execute_pairs(pairs):
    results = []
    for pair in pairs:
        results.append(pair)
    return results
