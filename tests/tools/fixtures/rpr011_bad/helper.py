"""Deliberate RPR011 violations: nondeterminism outside the RPR002 scope."""

from __future__ import annotations

import time


def stamp() -> float:
    return time.time()


def order_tiles(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    return [pair for pair in set(pairs)]
