"""Plan construction calling into a helper that reads the wall clock."""

from __future__ import annotations

from helper import order_tiles, stamp


def build_plan(pairs: list[tuple[int, int]]) -> dict[str, object]:
    return {"pairs": order_tiles(pairs), "stamp": stamp()}
