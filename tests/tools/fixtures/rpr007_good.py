"""RPR007 fixture: reads and atomic writes are both fine."""

import json
from pathlib import Path

from repro.ioutil import atomic_write, atomic_write_text


def load_config(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_blob(path):
    with Path(path).open("rb") as handle:
        return handle.read()


def save_config(path, payload):
    with atomic_write(path, mode="w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def save_manifest(path, text):
    atomic_write_text(path, text)


def reopen(path, mode):
    # Dynamic mode: the rule cannot prove a write, so this is skipped.
    return open(path, mode)
