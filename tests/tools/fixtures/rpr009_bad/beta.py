"""The other half of the cycle: acquires alpha's lock while holding ours."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from alpha import Alpha


class Beta:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.back: Alpha | None = None

    def ping(self) -> None:
        with self._lock:
            if self.back is not None:
                self.back.poke()

    def poke(self) -> None:
        with self._lock:
            pass
