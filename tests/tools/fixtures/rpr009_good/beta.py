"""Beta never calls back into alpha while holding its own lock."""

from __future__ import annotations

import threading


class Beta:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.pokes = 0

    def poke(self) -> None:
        with self._lock:
            self.pokes += 1
