"""Consistent lock order: alpha's lock is always taken before beta's."""

from __future__ import annotations

import threading

from beta import Beta


class Alpha:
    def __init__(self, other: Beta) -> None:
        self._lock = threading.Lock()
        self.other = other

    def ping(self) -> None:
        with self._lock:
            self.other.poke()

    def poke(self) -> None:
        with self._lock:
            pass
