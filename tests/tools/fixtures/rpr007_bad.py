"""RPR007 fixture: direct writes to final paths, four flavors."""

import json
from pathlib import Path


def save_config(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def save_blob(path, blob):
    with Path(path).open(mode="wb") as handle:
        handle.write(blob)


def save_manifest(path, text):
    Path(path).write_text(text, encoding="utf-8")


def append_log(path, line):
    with open(path, mode="a", encoding="utf-8") as handle:
        handle.write(line)
