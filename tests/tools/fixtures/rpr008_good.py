"""RPR008 fixture: thread pools and lazy supervisor imports are fine."""

from concurrent.futures import ThreadPoolExecutor


def run_threaded(tasks):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(lambda task: task(), tasks))


def run_supervised_lazily(plan):
    # Routing through the supervisor is the sanctioned way to get
    # worker processes: it owns heartbeats, crash detection, and
    # pair reassignment.
    from repro.resilience.supervisor import run_supervised

    return run_supervised(plan)
