"""RPR006 fixture: missing parameter and return annotations."""


def scale(value, factor=2.0) -> float:
    return value * factor


def shift(value: float, offset: float):
    return value + offset
