"""RPR001 fixture: a registry missing the dense x dense combinations."""

from enum import Enum


class StorageKind(Enum):
    SPARSE = "sparse"
    DENSE = "dense"


_KERNELS = {}


def register_kernel(a_kind, b_kind, c_kind, kernel):
    _KERNELS[(a_kind, b_kind, c_kind)] = kernel


def _kernel(a, wa, b, wb, out, row0, col0):
    pass


def _install_builtins():
    for c_kind in StorageKind:
        register_kernel(StorageKind.SPARSE, StorageKind.SPARSE, c_kind, _kernel)
        register_kernel(StorageKind.SPARSE, StorageKind.DENSE, c_kind, _kernel)
        register_kernel(StorageKind.DENSE, StorageKind.SPARSE, c_kind, _kernel)
    # dense x dense deliberately left unregistered
