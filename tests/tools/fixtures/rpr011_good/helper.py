"""Deterministic helpers: sorted iteration, no ambient entropy."""

from __future__ import annotations


def order_tiles(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    return sorted(dict.fromkeys(pairs))
