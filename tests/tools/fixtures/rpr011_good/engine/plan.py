"""Plan construction whose helpers stay deterministic."""

from __future__ import annotations

from helper import order_tiles


def build_plan(pairs: list[tuple[int, int]]) -> dict[str, object]:
    return {"pairs": order_tiles(pairs)}
