"""RPR004 fixture: internal call sites using the deprecated keywords."""


def run(a, b, atmult, multiply_chain):
    result, _ = atmult(a, b, memory_limit_bytes=1e9)
    chained = multiply_chain([a, b], use_estimation=False)
    return result, chained
