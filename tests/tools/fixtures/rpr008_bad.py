"""RPR008 fixture: ad-hoc process management, four flavors."""

import concurrent.futures
import multiprocessing
import multiprocessing.pool
from multiprocessing import Process
from concurrent.futures import ProcessPoolExecutor


def fork_unsupervised(target):
    worker = Process(target=target)
    worker.start()
    return worker


def pool_unsupervised(tasks):
    with concurrent.futures.ProcessPoolExecutor() as pool:
        return list(pool.map(lambda task: task(), tasks))
