"""RPR004 fixture: internal call sites route through MultiplyOptions."""


def run(a, b, atmult, MultiplyOptions):
    options = MultiplyOptions(memory_limit_bytes=1e9, use_estimation=False)
    return atmult(a, b, options=options)
