"""RPR002 fixture: five distinct determinism violations."""

import random
import time

import numpy as np


def build(tiles):
    stamp = time.time()
    jitter = random.random()
    noise = np.random.rand(4)
    anchors = {id(tile): i for i, tile in enumerate(tiles)}
    order = [row for row in {tile.row0 for tile in tiles}]
    return stamp, jitter, noise, anchors, order
