"""RPR006 fixture: fully annotated functions."""


def scale(value: float, factor: float = 2.0) -> float:
    return value * factor


class Box:
    def __init__(self, value: float) -> None:
        self.value = value

    def get(self) -> float:
        return self.value
