"""RPR003 fixture: a lock-owning class mutating state outside the lock."""

import threading


class Cache:
    def __init__(self):
        self._entries = {}
        self._hits = 0
        self._lock = threading.Lock()

    def get(self, key):
        self._hits += 1
        with self._lock:
            return self._entries.get(key)

    def put(self, key, value):
        self._entries[key] = value

    def note(self, items):
        self._entries.update(items)
