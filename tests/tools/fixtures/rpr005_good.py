"""RPR005 fixture: the public pair loop is covered by a span."""


def execute_pairs(pairs, observation, tracer_span):
    results = []
    with tracer_span(observation, "pair_loop"):
        for pair in pairs:
            results.append(pair)
    return results
