"""RPR003 fixture: every mutation of shared state is under the lock."""

import threading


class Cache:
    def __init__(self):
        self._entries = {}
        self._hits = 0
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            self._hits += 1
            return self._entries.get(key)

    def put(self, key, value):
        with self._lock:
            self._store_locked(key, value)

    def _store_locked(self, key, value):
        self._entries[key] = value
