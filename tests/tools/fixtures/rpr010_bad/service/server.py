"""Deliberate RPR010 violations: blocking work on the event loop."""

from __future__ import annotations

import time

from store import JobStore


def render(job_id: str) -> str:
    with open(job_id) as handle:
        return handle.read()


class Service:
    def __init__(self, root: str) -> None:
        self.store = JobStore(root)

    async def submit(self, job_id: str) -> None:
        self.store.create(job_id)
        time.sleep(0.01)

    async def result(self, job_id: str) -> str:
        return render(job_id)
