"""A synchronous persistence layer (names match the real JobStore)."""

from __future__ import annotations

from pathlib import Path


class JobStore:
    def __init__(self, root: str) -> None:
        self.root = Path(root)

    def create(self, job_id: str) -> None:
        (self.root / job_id).write_text("{}")

    def load_result(self, job_id: str) -> str:
        return (self.root / job_id).read_text()
