"""Deliberate RPR012 violations: thread-visible writes with no lock."""

from __future__ import annotations

import threading

COUNTS: dict[str, int] = {}


class Runner:
    def __init__(self) -> None:
        self.total = 0

    def start(self) -> threading.Thread:
        thread = threading.Thread(target=self._run)
        thread.start()
        return thread

    def _run(self) -> None:
        self.total += 1
        COUNTS["runs"] = self.total
