"""RPR002 fixture: planning code that stays deterministic."""

import numpy as np


def build(tiles, seed):
    rng = np.random.default_rng(seed)
    anchors = {(tile.row0, tile.col0): i for i, tile in enumerate(tiles)}
    order = sorted({tile.row0 for tile in tiles})
    sample = rng.random(4)
    return anchors, order, sample
