"""Tests for the runtime lock-order sanitizer.

The acceptance bar: at least one test seeds a genuine lock-order
inversion and shows the recorder catching it.  The rest covers the
factory patching, project-frame filtering and the cross-check against
RPR009's static edge graph.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from tools.repro_check import sanitize

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_pair(recorder: sanitize.LockOrderRecorder) -> tuple:
    a = sanitize.SanitizedLock(threading.Lock(), "mod_a.py:10", recorder)
    b = sanitize.SanitizedLock(threading.Lock(), "mod_b.py:20", recorder)
    recorder.on_create("mod_a.py:10")
    recorder.on_create("mod_b.py:20")
    return a, b


class TestRecorder:
    def test_seeded_inversion_is_detected(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        with a, b:
            pass
        with b, a:
            pass
        inversions = recorder.inversions()
        assert len(inversions) == 1
        first, second, _w1, _w2 = inversions[0]
        assert {first, second} == {"mod_a.py:10", "mod_b.py:20"}

    def test_consistent_order_reports_no_inversion(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        with a, b:
            pass
        with a, b:
            pass
        assert recorder.inversions() == []
        assert recorder.edge_keys() == {("mod_a.py:10", "mod_b.py:20")}

    def test_held_stacks_are_per_thread(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        seen: list[tuple[str, str]] = []

        def other_thread() -> None:
            with b:
                pass
            seen.extend(recorder.edge_keys())

        with a:
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        # The other thread acquired b while this thread held a, but the
        # held stack is thread-local so no a->b edge is recorded.
        assert seen == []
        assert recorder.edge_keys() == set()

    def test_verify_raises_on_inversion(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        with a, b:
            pass
        with b, a:
            pass
        with pytest.raises(AssertionError, match="INVERSION"):
            sanitize.verify(recorder)

    def test_check_reports_consistent_runs_clean(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        with a, b:
            pass
        report = sanitize.check(recorder, static_edges=set())
        assert report.inversions == []
        assert report.observed_edges == 1


class TestSanitizedLock:
    def test_context_manager_and_locked_delegate(self):
        recorder = sanitize.LockOrderRecorder()
        lock = sanitize.SanitizedLock(threading.Lock(), "x.py:1", recorder)
        assert lock.locked() is False
        with lock:
            assert lock.locked() is True
        assert lock.locked() is False

    def test_rlock_reacquisition_still_works(self):
        recorder = sanitize.LockOrderRecorder()
        lock = sanitize.SanitizedLock(threading.RLock(), "x.py:1", recorder)
        with lock, lock:
            pass
        # Re-acquiring the same lock must not count as an ordering edge.
        assert recorder.edge_keys() == set()


class TestInstall:
    def test_install_patches_factories_and_uninstall_restores(self):
        originals = (threading.Lock, threading.RLock)
        recorder = sanitize.install()
        try:
            assert sanitize.active_recorder() is recorder
            assert threading.Lock is not originals[0]
            assert threading.RLock is not originals[1]
        finally:
            sanitize.uninstall()
        assert (threading.Lock, threading.RLock) == originals
        assert sanitize.active_recorder() is None

    def test_locks_made_outside_the_project_pass_through(self):
        sanitize.install()
        try:
            # This test file is not under src/repro/, so the factory
            # must hand back a plain lock and record nothing.
            lock = threading.Lock()
            assert not isinstance(lock, sanitize.SanitizedLock)
        finally:
            sanitize.uninstall()

    def test_install_is_idempotent(self):
        first = sanitize.install()
        second = sanitize.install()
        try:
            assert first is second
        finally:
            sanitize.uninstall()


class TestStaticCrossCheck:
    def test_static_edges_cover_the_known_cache_metrics_edge(self):
        edges = sanitize.static_edge_keys(REPO_ROOT)
        cache_holds = {
            (held, acquired)
            for held, acquired in edges
            if held.startswith("src/repro/engine/cache.py")
            and acquired.startswith("src/repro/observe/metrics.py")
        }
        assert cache_holds, "expected PlanCache -> MetricsRegistry edge"

    def test_unknown_edges_are_surfaced_in_the_report(self):
        recorder = sanitize.LockOrderRecorder()
        a, b = make_pair(recorder)
        with a, b:
            pass
        report = sanitize.check(recorder, static_edges=set())
        assert report.unknown_edges == [("mod_a.py:10", "mod_b.py:20")]
        assert "1 edge(s) unknown" in report.summary()
