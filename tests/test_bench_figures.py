"""Tests for the ASCII figure renderer."""

import json

import pytest

from repro.bench.figures import main, render_experiment
from repro.errors import ParseError


@pytest.fixture
def payload():
    return {
        "config": {"llc_bytes": 384 * 1024},
        "seconds": {
            "fig8": {
                "spspsp": {"R1": 2.0, "R3": 4.0},
                "ATMULT": {"R1": 0.5, "R3": 1.0},
            }
        },
        "notes": {},
    }


@pytest.fixture
def results_file(tmp_path, payload):
    path = tmp_path / "bench_results.json"
    path.write_text(json.dumps(payload))
    return path


class TestRender:
    def test_relative_bars(self, payload):
        text = render_experiment(payload, "fig8", baseline="spspsp")
        assert "R1" in text and "R3" in text
        assert "4.00x" in text  # ATMULT is 4x the baseline on both
        assert "1.00x" in text
        assert "#" in text

    def test_absolute_mode(self, payload):
        text = render_experiment(payload, "fig8")
        assert "s" in text
        assert "x" not in text.split("\n")[0]

    def test_faster_algorithm_longer_bar(self, payload):
        text = render_experiment(payload, "fig8", baseline="spspsp")
        lines = [l for l in text.splitlines() if "|" in l]
        bars = {line.split("|")[0].strip(): line.count("#") for line in lines[:2]}
        assert bars["ATMULT"] > bars["spspsp"]

    def test_unknown_experiment(self, payload):
        with pytest.raises(ParseError, match="available"):
            render_experiment(payload, "fig99")

    def test_unknown_baseline(self, payload):
        with pytest.raises(ParseError):
            render_experiment(payload, "fig8", baseline="nope")


class TestCli:
    def test_lists_experiments(self, results_file, capsys):
        assert main([str(results_file)]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "ATMULT" in out

    def test_renders_experiment(self, results_file, capsys):
        assert main([str(results_file), "fig8", "--baseline", "spspsp"]) == 0
        assert "#" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main([str(path), "fig8"]) == 1
