"""Tests for Morton (Z-curve) bit interleaving."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FormatError
from repro.zorder import (
    morton_decode,
    morton_decode_scalar,
    morton_encode,
    morton_encode_scalar,
)

COORD = st.integers(min_value=0, max_value=2**31 - 1)


class TestScalarEncoding:
    def test_origin_is_zero(self):
        assert morton_encode_scalar(0, 0) == 0

    def test_known_small_values(self):
        # Quadrant order: UL(0,0)=0, UR(0,1)=1, LL(1,0)=2, LR(1,1)=3.
        assert morton_encode_scalar(0, 1) == 1
        assert morton_encode_scalar(1, 0) == 2
        assert morton_encode_scalar(1, 1) == 3

    def test_second_level_quadrants(self):
        # The four cells of the upper-left 2x2 quadrant come first.
        ul = [morton_encode_scalar(r, c) for r in (0, 1) for c in (0, 1)]
        assert sorted(ul) == [0, 1, 2, 3]
        # Any cell in another quadrant has a larger code.
        assert morton_encode_scalar(0, 2) == 4
        assert morton_encode_scalar(2, 0) == 8
        assert morton_encode_scalar(2, 2) == 12

    def test_row_bits_are_more_significant(self):
        # Row dominates: (1, 0) comes after (0, anything < 2).
        assert morton_encode_scalar(1, 0) > morton_encode_scalar(0, 1)

    def test_decode_inverts_encode(self):
        for row, col in [(0, 0), (5, 9), (1023, 4095), (2**20, 3)]:
            assert morton_decode_scalar(morton_encode_scalar(row, col)) == (row, col)

    def test_max_coordinate_roundtrip(self):
        top = 2**31 - 1
        assert morton_decode_scalar(morton_encode_scalar(top, top)) == (top, top)


class TestVectorized:
    def test_matches_scalar(self):
        rows = np.array([0, 3, 17, 100])
        cols = np.array([5, 0, 9, 63])
        expected = [morton_encode_scalar(int(r), int(c)) for r, c in zip(rows, cols, strict=True)]
        assert morton_encode(rows, cols).tolist() == expected

    def test_decode_vectorized(self):
        z = np.array([0, 1, 2, 3, 4, 8, 12], dtype=np.uint64)
        rows, cols = morton_decode(z)
        assert rows.tolist() == [0, 0, 1, 1, 0, 2, 2]
        assert cols.tolist() == [0, 1, 0, 1, 2, 0, 2]

    def test_empty_arrays(self):
        empty = np.empty(0, dtype=np.int64)
        assert len(morton_encode(empty, empty)) == 0

    def test_negative_rejected(self):
        with pytest.raises(FormatError):
            morton_encode(np.array([-1]), np.array([0]))

    def test_too_large_rejected(self):
        with pytest.raises(FormatError):
            morton_encode(np.array([2**31]), np.array([0]))


class TestZOrderProperties:
    @given(COORD, COORD)
    def test_roundtrip(self, row, col):
        assert morton_decode_scalar(morton_encode_scalar(row, col)) == (row, col)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    def test_quadrant_contiguity(self, row, col):
        """All codes of an aligned 2^k square form one contiguous range."""
        k = 4
        row0 = (row >> k) << k
        col0 = (col >> k) << k
        base = morton_encode_scalar(row0, col0)
        z = morton_encode_scalar(row, col)
        assert base <= z < base + (1 << (2 * k))

    @given(st.lists(st.tuples(COORD, COORD), min_size=2, max_size=50, unique=True))
    def test_encoding_injective(self, coords):
        rows = np.array([c[0] for c in coords])
        cols = np.array([c[1] for c in coords])
        codes = morton_encode(rows, cols)
        assert len(np.unique(codes)) == len(coords)
