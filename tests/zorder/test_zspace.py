"""Tests for Z-space geometry and the ZBlockCnts precomputation."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.zorder.morton import morton_encode_scalar
from repro.zorder.zspace import OUT_OF_BOUNDS, ZSpace, block_counts, zspace_size


class TestZSpaceGeometry:
    def test_side_blocks_power_of_two(self):
        z = ZSpace(rows=7, cols=8, b_atomic=2)
        # 4 block rows x 4 block cols -> side 4 (already a power of two).
        assert z.side_blocks == 4
        assert z.num_cells == 16

    def test_side_blocks_pads_to_power_of_two(self):
        z = ZSpace(rows=10, cols=2, b_atomic=2)
        # 5 x 1 block grid -> padded square side 8.
        assert z.grid_rows == 5
        assert z.grid_cols == 1
        assert z.side_blocks == 8

    def test_single_block(self):
        z = ZSpace(rows=3, cols=3, b_atomic=4)
        assert z.side_blocks == 1
        assert z.num_cells == 1

    def test_block_of(self):
        z = ZSpace(rows=100, cols=100, b_atomic=16)
        assert z.block_of(0, 0) == (0, 0)
        assert z.block_of(15, 16) == (0, 1)
        assert z.block_of(99, 99) == (6, 6)
        with pytest.raises(FormatError):
            z.block_of(100, 0)

    def test_block_bounds_clipped(self):
        z = ZSpace(rows=20, cols=10, b_atomic=16)
        assert z.block_bounds(0, 0) == (0, 16, 0, 10)
        assert z.block_bounds(1, 0) == (16, 20, 0, 10)

    def test_block_area_boundary(self):
        z = ZSpace(rows=20, cols=10, b_atomic=16)
        assert z.block_area(0, 0) == 16 * 10
        assert z.block_area(1, 0) == 4 * 10

    def test_invalid_dimensions(self):
        with pytest.raises(FormatError):
            ZSpace(rows=0, cols=5, b_atomic=4)

    def test_invalid_block_size(self):
        with pytest.raises(FormatError):
            ZSpace(rows=5, cols=5, b_atomic=3)

    def test_zspace_size_formula(self):
        # K = 4 ** max(ceil(log2 m), ceil(log2 n)) from the paper.
        assert zspace_size(7, 8) == 4**3
        assert zspace_size(1024, 1024) == 4**10
        assert zspace_size(1025, 16) == 4**11


class TestBlockCounts:
    def test_counts_land_in_correct_cells(self):
        z = ZSpace(rows=8, cols=8, b_atomic=2)
        rows = np.array([0, 1, 0, 7])
        cols = np.array([0, 1, 3, 7])
        counts = block_counts(rows, cols, z)
        assert counts[morton_encode_scalar(0, 0)] == 2
        assert counts[morton_encode_scalar(0, 1)] == 1
        assert counts[morton_encode_scalar(3, 3)] == 1
        assert counts.sum() == 4  # no out-of-bounds cells here

    def test_out_of_bounds_marked(self):
        z = ZSpace(rows=7, cols=8, b_atomic=2)
        counts = block_counts(np.array([0]), np.array([0]), z)
        # Grid is 4x4, side 4 -> all cells in bounds; now force padding:
        z2 = ZSpace(rows=10, cols=4, b_atomic=2)  # 5x2 grid, side 8
        counts2 = block_counts(np.array([0]), np.array([0]), z2)
        assert counts2[morton_encode_scalar(0, 0)] == 1
        # Any block beyond column 1 or row 4 is out of bounds.
        assert counts2[morton_encode_scalar(0, 7)] == OUT_OF_BOUNDS
        assert counts2[morton_encode_scalar(7, 0)] == OUT_OF_BOUNDS
        assert counts[morton_encode_scalar(0, 0)] == 1

    def test_total_count_matches_nnz(self):
        rng = np.random.default_rng(3)
        z = ZSpace(rows=50, cols=70, b_atomic=8)
        rows = rng.integers(0, 50, 500)
        cols = rng.integers(0, 70, 500)
        counts = block_counts(rows, cols, z)
        assert counts[counts > 0].sum() == 500

    def test_coordinates_outside_rejected(self):
        z = ZSpace(rows=4, cols=4, b_atomic=2)
        with pytest.raises(FormatError):
            block_counts(np.array([4]), np.array([0]), z)

    def test_mismatched_arrays_rejected(self):
        z = ZSpace(rows=4, cols=4, b_atomic=2)
        with pytest.raises(FormatError):
            block_counts(np.array([0, 1]), np.array([0]), z)

    def test_empty_matrix(self):
        z = ZSpace(rows=4, cols=4, b_atomic=2)
        counts = block_counts(np.empty(0), np.empty(0), z)
        assert counts.shape == (4,)
        assert (counts == 0).all()
