"""Tests for the real-world-like topology generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.generate import (
    banded_matrix,
    block_diagonal_matrix,
    clustered_matrix,
    power_network_matrix,
    uniform_random_matrix,
)


class TestUniform:
    def test_nnz_close_to_target(self):
        m = uniform_random_matrix(128, 2000, seed=1)
        assert m.nnz == 2000

    def test_deterministic(self):
        assert uniform_random_matrix(64, 300, seed=2) == uniform_random_matrix(
            64, 300, seed=2
        )

    def test_zero_nnz(self):
        assert uniform_random_matrix(16, 0, seed=0).nnz == 0

    def test_invalid_dimension(self):
        with pytest.raises(ConfigError):
            uniform_random_matrix(0, 10)


class TestBlockDiagonal:
    def test_diagonal_blocks_are_dense(self):
        m = block_diagonal_matrix(
            128, num_blocks=4, block_fill=0.9, background_density=0.0, seed=3
        )
        dense = m.to_dense()
        # The first (largest) block must be nearly full.
        first = dense[:32, :32]
        assert (first != 0).mean() > 0.5

    def test_background_adds_offdiagonal(self):
        with_bg = block_diagonal_matrix(128, background_density=0.01, seed=3)
        without = block_diagonal_matrix(128, background_density=0.0, seed=3)
        assert with_bg.nnz > without.nnz

    def test_block_sizes_cover_dimension(self):
        m = block_diagonal_matrix(100, num_blocks=5, seed=1)
        assert m.row_ids.max() < 100

    def test_invalid_num_blocks(self):
        with pytest.raises(ConfigError):
            block_diagonal_matrix(64, num_blocks=0)


class TestPowerNetwork:
    def test_repeated_blocks_on_diagonal(self):
        m = power_network_matrix(
            256, block_size=32, num_blocks=4, background_density=0.0, seed=4
        )
        dense = m.to_dense()
        for i in range(4):
            block = dense[i * 32 : (i + 1) * 32, i * 32 : (i + 1) * 32]
            assert (block != 0).mean() > 0.5
        # Off-diagonal stays empty without background.
        assert dense[128:, :128].sum() == 0

    def test_block_size_validated(self):
        with pytest.raises(ConfigError):
            power_network_matrix(64, block_size=128)


class TestClustered:
    def test_target_nnz_respected_approximately(self):
        m = clustered_matrix(256, 5000, seed=5)
        assert abs(m.nnz - 5000) / 5000 < 0.15  # dedup may lose a few

    def test_clusters_create_local_density(self):
        m = clustered_matrix(
            256, 6000, num_clusters=2, cluster_fraction=0.9, cluster_span=0.1, seed=6
        )
        dense = (m.to_dense() != 0).astype(float)
        overall = dense.mean()
        # Find the densest 26x26 window via a crude block scan.
        best = max(
            dense[i : i + 26, j : j + 26].mean()
            for i in range(0, 230, 26)
            for j in range(0, 230, 26)
        )
        assert best > 5 * overall

    def test_cluster_fraction_validated(self):
        with pytest.raises(ConfigError):
            clustered_matrix(64, 100, cluster_fraction=1.5)


class TestBanded:
    def test_all_entries_within_band(self):
        m = banded_matrix(200, 2000, bandwidth=5, seed=7)
        assert (np.abs(m.row_ids - m.col_ids) <= 5).all()

    def test_nnz_close_to_target(self):
        m = banded_matrix(500, 4000, bandwidth=20, seed=8)
        assert m.nnz == 4000

    def test_bandwidth_validated(self):
        with pytest.raises(ConfigError):
            banded_matrix(64, 100, bandwidth=0)

    def test_default_bandwidth_scales_with_n(self):
        m = banded_matrix(640, 1000, seed=9)
        assert (np.abs(m.row_ids - m.col_ids) <= 640 // 64).all()
