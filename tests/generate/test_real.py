"""Tests for the real SuiteSparse matrix loader."""

import numpy as np
import pytest

from repro import COOMatrix
from repro.formats.matrix_market import write_matrix_market
from repro.generate.real import (
    MATRIX_DIR_ENV,
    RealMatrixUnavailable,
    SUITESPARSE_NAMES,
    available_real_matrices,
    load_real_matrix,
    real_matrix_path,
)


class TestPaths:
    def test_known_keys(self):
        assert SUITESPARSE_NAMES["R3"] == "TSOPF_RS_b2383"
        assert set(SUITESPARSE_NAMES) == {"R2", "R3", "R4", "R7", "R8", "R9"}

    def test_unknown_key(self, tmp_path):
        with pytest.raises(KeyError):
            real_matrix_path("R1", tmp_path)  # Hamiltonians are proprietary

    def test_no_directory_configured(self, monkeypatch):
        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        with pytest.raises(RealMatrixUnavailable):
            real_matrix_path("R3")

    def test_env_variable_used(self, monkeypatch, tmp_path):
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path))
        assert real_matrix_path("R3") == tmp_path / "TSOPF_RS_b2383.mtx"


class TestLoading:
    def test_missing_file_raises_with_hint(self, tmp_path):
        with pytest.raises(RealMatrixUnavailable, match="sparse.tamu.edu"):
            load_real_matrix("R3", tmp_path)

    def test_loads_present_file(self, tmp_path, rng):
        array = np.where(rng.random((6, 6)) < 0.4, rng.random((6, 6)), 0.0)
        write_matrix_market(
            COOMatrix.from_dense(array), tmp_path / "TSOPF_RS_b2383.mtx"
        )
        loaded = load_real_matrix("R3", tmp_path)
        np.testing.assert_allclose(loaded.to_dense(), array)

    def test_available_listing(self, tmp_path):
        assert available_real_matrices(tmp_path) == []
        (tmp_path / "msdoor.mtx").write_text(
            "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n"
        )
        assert available_real_matrices(tmp_path) == ["R9"]

    def test_available_without_directory(self, monkeypatch):
        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        assert available_real_matrices() == []
