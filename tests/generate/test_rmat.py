"""Tests for the RMAT generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.generate import rmat_matrix
from repro.generate.rmat import PAPER_RMAT_PARAMETERS


class TestBasicGeneration:
    def test_exact_nnz(self):
        m = rmat_matrix(256, 1000, 0.25, 0.25, 0.25, 0.25, seed=1)
        assert m.nnz == 1000
        assert m.shape == (256, 256)

    def test_no_duplicates(self):
        m = rmat_matrix(128, 2000, 0.3, 0.3, 0.2, 0.2, seed=2)
        keys = m.row_ids * m.cols + m.col_ids
        assert len(np.unique(keys)) == m.nnz

    def test_deterministic_in_seed(self):
        a = rmat_matrix(128, 500, 0.4, 0.2, 0.2, 0.2, seed=7)
        b = rmat_matrix(128, 500, 0.4, 0.2, 0.2, 0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = rmat_matrix(128, 500, 0.4, 0.2, 0.2, 0.2, seed=7)
        b = rmat_matrix(128, 500, 0.4, 0.2, 0.2, 0.2, seed=8)
        assert a != b

    def test_ones_values(self):
        m = rmat_matrix(64, 100, 0.25, 0.25, 0.25, 0.25, seed=0, values="ones")
        assert (m.values == 1.0).all()

    def test_non_power_of_two_dimension(self):
        m = rmat_matrix(100, 500, 0.25, 0.25, 0.25, 0.25, seed=3)
        assert m.row_ids.max() < 100
        assert m.col_ids.max() < 100


class TestSkew:
    def test_skew_concentrates_upper_left(self):
        uniform = rmat_matrix(256, 3000, 0.25, 0.25, 0.25, 0.25, seed=5)
        skewed = rmat_matrix(256, 3000, 0.7, 0.1, 0.1, 0.1, seed=5)

        def upper_left_fraction(m):
            mask = (m.row_ids < 128) & (m.col_ids < 128)
            return mask.sum() / m.nnz

        assert upper_left_fraction(skewed) > upper_left_fraction(uniform) + 0.2

    def test_strict_raises_on_saturation(self):
        with pytest.raises(ConfigError):
            rmat_matrix(64, 4000, 0.9, 0.04, 0.03, 0.03, seed=1, max_rounds=2)

    def test_non_strict_returns_partial(self):
        m = rmat_matrix(64, 4000, 0.9, 0.04, 0.03, 0.03, seed=1, max_rounds=2, strict=False)
        assert 0 < m.nnz <= 4000


class TestValidation:
    def test_bad_probabilities(self):
        with pytest.raises(ConfigError):
            rmat_matrix(64, 10, 0.5, 0.5, 0.5, 0.5)

    def test_negative_probability(self):
        with pytest.raises(ConfigError):
            rmat_matrix(64, 10, -0.1, 0.5, 0.3, 0.3)

    def test_bad_dimension(self):
        with pytest.raises(ConfigError):
            rmat_matrix(0, 10, 0.25, 0.25, 0.25, 0.25)

    def test_nnz_too_large(self):
        with pytest.raises(ConfigError):
            rmat_matrix(4, 17, 0.25, 0.25, 0.25, 0.25)

    def test_bad_values_mode(self):
        with pytest.raises(ConfigError):
            rmat_matrix(4, 2, 0.25, 0.25, 0.25, 0.25, values="gaussian")


class TestPaperParameters:
    def test_series_complete(self):
        assert set(PAPER_RMAT_PARAMETERS) == {f"G{i}" for i in range(1, 10)}

    def test_parameters_sum_to_one(self):
        for params in PAPER_RMAT_PARAMETERS.values():
            assert sum(params) == pytest.approx(1.0)

    def test_skew_increases_monotonically(self):
        a_values = [PAPER_RMAT_PARAMETERS[f"G{i}"][0] for i in range(1, 10)]
        assert a_values == sorted(a_values)
