"""Tests for the scaled Table-I suite."""

import pytest

from repro.generate import SUITE, load_matrix, suite_keys
from repro.generate.suite import table1_row


class TestSuiteRegistry:
    def test_all_18_matrices_present(self):
        assert len(SUITE) == 18
        assert set(suite_keys()) == set(SUITE)

    def test_key_ordering(self):
        keys = suite_keys()
        assert keys[:9] == [f"R{i}" for i in range(1, 10)]
        assert keys[9:] == [f"G{i}" for i in range(1, 10)]

    def test_family_filters(self):
        assert suite_keys(generated=False) == [f"R{i}" for i in range(1, 10)]
        assert suite_keys(real=False) == [f"G{i}" for i in range(1, 10)]

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            load_matrix("R99")


class TestSuiteMatrices:
    # Small/fast representatives of each topology family.
    @pytest.mark.parametrize("key", ["R1", "R3", "R7", "G1", "G9"])
    def test_loadable_and_deterministic(self, key):
        first = load_matrix(key)
        second = load_matrix(key)
        assert first == second
        assert first.rows == SUITE[key].n

    def test_r1_is_densest_real_matrix(self):
        r1 = load_matrix("R1")
        r7 = load_matrix("R7")
        assert r1.density > 10 * r7.density

    def test_hypersparse_family(self):
        for key in ("R7", "R8", "R9"):
            matrix = load_matrix(key)
            assert matrix.density < 0.005, key

    def test_table1_row_contents(self):
        matrix = load_matrix("R3")
        row = table1_row("R3", matrix)
        assert row["key"] == "R3"
        assert row["nnz"] == matrix.sum_duplicates().nnz
        assert row["binary_size_bytes"] == row["nnz"] * 16
        assert "Power Network" in row["domain"]

    def test_g_series_shares_dims(self):
        dims = {SUITE[f"G{i}"].n for i in range(1, 10)}
        assert len(dims) == 1
