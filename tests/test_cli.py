"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro import COOMatrix
from repro.cli import main
from repro.formats.matrix_market import read_matrix_market, write_matrix_market

from .conftest import heterogeneous_array


@pytest.fixture
def mtx_file(tmp_path, rng):
    array = heterogeneous_array(rng, 96, 96)
    path = tmp_path / "input.mtx"
    write_matrix_market(COOMatrix.from_dense(array), path)
    return path, array


class TestInfo:
    def test_prints_statistics(self, mtx_file, capsys):
        path, array = mtx_file
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "96 x 96" in out
        assert f"nnz={np.count_nonzero(array)}" in out
        assert "block density map" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.mtx")]) == 1
        assert "error" in capsys.readouterr().err


class TestPartition:
    def test_reports_tiles(self, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["partition", str(path), "--llc-kib", "8"]) == 0
        out = capsys.readouterr().out
        assert "partitioned into" in out
        assert "tile layout" in out

    def test_custom_b_atomic(self, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["partition", str(path), "--llc-kib", "8", "--b-atomic", "32"]) == 0

    def test_invalid_b_atomic(self, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["partition", str(path), "--b-atomic", "33"]) == 1
        assert "error" in capsys.readouterr().err


class TestMultiply:
    def test_self_product_roundtrip(self, mtx_file, tmp_path, capsys):
        path, array = mtx_file
        out_path = tmp_path / "c.mtx"
        code = main(
            ["multiply", str(path), str(path), "-o", str(out_path),
             "--llc-kib", "8"]
        )
        assert code == 0
        result = read_matrix_market(out_path)
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-8)
        assert "kernels" in capsys.readouterr().out

    def test_memory_limit_flag(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--llc-kib", "8",
             "--memory-limit-mb", "100"]
        )
        assert code == 0

    def test_fault_injection_with_retries(self, mtx_file, tmp_path, capsys):
        path, array = mtx_file
        out_path = tmp_path / "c.mtx"
        code = main(
            ["multiply", str(path), str(path), "-o", str(out_path),
             "--llc-kib", "8", "--inject-faults", "2", "--max-retries", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "faults injected" in out
        result = read_matrix_market(out_path)
        np.testing.assert_allclose(result.to_dense(), array @ array, atol=1e-8)

    def test_max_retries_without_faults(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--llc-kib", "8",
             "--max-retries", "2", "--task-deadline", "30"]
        )
        assert code == 0
        assert "resilience:" in capsys.readouterr().out


class TestArgumentValidation:
    """Satellite 2: reject nonsensical numeric arguments up front."""

    def test_negative_memory_limit(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--memory-limit-mb", "-5"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_read_threshold_above_one(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--read-threshold", "1.5"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_zero_max_retries(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(["multiply", str(path), str(path), "--max-retries", "0"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_non_power_of_two_b_atomic(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(["multiply", str(path), str(path), "--b-atomic", "17"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_negative_task_deadline(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--task-deadline", "-1"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExecutionFlags:
    def test_thread_backend_runs_and_reports_workers(self, mtx_file, capsys):
        path, array = mtx_file
        assert main(
            ["multiply", str(path), str(path), "--execution", "threads"]
        ) == 0
        out = capsys.readouterr().out
        assert "execution: threads, 2 workers" in out
        assert f"nnz={np.count_nonzero(array @ array)}" in out

    def test_process_backend_runs_supervised(self, mtx_file, capsys):
        path, array = mtx_file
        assert main(
            [
                "multiply", str(path), str(path),
                "--execution", "processes",
                "--workers", "2",
                "--heartbeat-interval", "0.05",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "execution: processes, 2 workers" in out
        assert f"nnz={np.count_nonzero(array @ array)}" in out

    def test_workers_without_execution_rejected(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(["multiply", str(path), str(path), "--workers", "2"])
        assert code == 1
        assert "--workers requires --execution" in capsys.readouterr().err

    def test_zero_workers_rejected(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            [
                "multiply", str(path), str(path),
                "--execution", "threads", "--workers", "0",
            ]
        )
        assert code == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_non_positive_heartbeat_rejected(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            [
                "multiply", str(path), str(path),
                "--execution", "processes", "--heartbeat-interval", "0",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_checkpointed_multiply_writes_journal(self, mtx_file, tmp_path, capsys):
        path, _ = mtx_file
        ckpt = tmp_path / "ckpt"
        code = main(
            ["multiply", str(path), str(path), "--llc-kib", "8",
             "--checkpoint-dir", str(ckpt), "--checkpoint-flush", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint:" in out
        assert "0 pairs resumed" in out
        assert (ckpt / "MANIFEST.json").exists()
        assert list(ckpt.glob("pairs/pair-*.npz"))

    def test_resume_skips_completed_pairs(self, mtx_file, tmp_path, capsys):
        path, _ = mtx_file
        ckpt = tmp_path / "ckpt"
        base = ["multiply", str(path), str(path), "--llc-kib", "8",
                "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_resume_requires_checkpoint_dir(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(["multiply", str(path), str(path), "--resume"])
        assert code == 1
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_zero_checkpoint_flush_rejected(self, mtx_file, capsys):
        path, _ = mtx_file
        code = main(
            ["multiply", str(path), str(path), "--checkpoint-flush", "0"]
        )
        assert code == 1
        assert "--checkpoint-flush" in capsys.readouterr().err


class TestVerify:
    @pytest.fixture
    def archive(self, mtx_file, tmp_path):
        from repro import COOMatrix, SystemConfig, build_at_matrix, save_at_matrix

        _, array = mtx_file
        at = build_at_matrix(
            COOMatrix.from_dense(array),
            SystemConfig(llc_bytes=8 * 1024, b_atomic=16),
        )
        path = tmp_path / "matrix.npz"
        save_at_matrix(at, path)
        return path

    def test_clean_archive_exits_zero(self, archive, capsys):
        assert main(["verify", str(archive)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_clean_mtx_exits_zero(self, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["verify", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corrupt_archive_exits_four(self, archive, capsys):
        archive.write_bytes(b"garbage, not an archive")
        assert main(["verify", str(archive)]) == 4
        captured = capsys.readouterr()
        assert "archive-unreadable" in captured.out
        assert "integrity violation(s) found" in captured.err

    def test_unparsable_mtx_exits_four(self, tmp_path, capsys):
        path = tmp_path / "broken.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n1 1\n")
        assert main(["verify", str(path)]) == 4
        assert "parse-error" in capsys.readouterr().out

    def test_mixed_targets_report_each(self, archive, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["verify", str(archive), str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope.npz")]) == 1
        assert "error" in capsys.readouterr().err


class TestKeyboardInterrupt:
    def test_interrupt_exits_130_with_one_line(self, mtx_file, capsys, monkeypatch):
        path, _ = mtx_file
        from repro import cli

        monkeypatch.setattr(
            cli, "cmd_multiply", lambda args: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        code = main(["multiply", str(path), str(path)])
        assert code == 130
        err = capsys.readouterr().err
        assert err == "interrupted\n"

    def test_interrupt_mentions_checkpoint_dir(
        self, mtx_file, tmp_path, capsys, monkeypatch
    ):
        path, _ = mtx_file
        from repro import cli

        monkeypatch.setattr(
            cli, "cmd_multiply", lambda args: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        ckpt = tmp_path / "ckpt"
        code = main(
            ["multiply", str(path), str(path), "--checkpoint-dir", str(ckpt)]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert str(ckpt) in err
        assert "--resume" in err


class TestAdvise:
    def test_prints_recommendation(self, mtx_file, capsys):
        path, _ = mtx_file
        assert main(["advise", str(path), "--llc-kib", "8"]) == 0
        out = capsys.readouterr().out
        assert "topology class" in out
        assert "partition into AT Matrix" in out


class TestGenerate:
    def test_emits_suite_matrix(self, tmp_path, capsys):
        out_path = tmp_path / "r7.mtx"
        assert main(["generate", "R7", "-o", str(out_path)]) == 0
        matrix = read_matrix_market(out_path)
        assert matrix.nnz > 0

    def test_unknown_key(self, tmp_path, capsys):
        assert main(["generate", "R99", "-o", str(tmp_path / "x.mtx")]) == 2
        assert "unknown suite key" in capsys.readouterr().err


class TestSolve:
    @pytest.fixture
    def spd_mtx(self, tmp_path):
        n = 32
        array = np.eye(n) * 4.0
        for i in range(n - 1):
            array[i, i + 1] = array[i + 1, i] = -1.0
        path = tmp_path / "spd.mtx"
        write_matrix_market(COOMatrix.from_dense(array), path)
        return path, array

    def test_cg_converges(self, spd_mtx, tmp_path, capsys):
        path, array = spd_mtx
        out_path = tmp_path / "x.mtx"
        code = main(
            ["solve", str(path), "--llc-kib", "8", "-o", str(out_path)]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out
        solution = read_matrix_market(out_path).to_dense().ravel()
        np.testing.assert_allclose(array @ solution, np.ones(32), atol=1e-6)

    def test_jacobi_method(self, spd_mtx, capsys):
        path, _ = spd_mtx
        assert main(["solve", str(path), "--method", "jacobi", "--llc-kib", "8"]) == 0

    def test_nonconvergence_exit_code(self, spd_mtx, capsys):
        path, _ = spd_mtx
        code = main(
            ["solve", str(path), "--llc-kib", "8", "--max-iterations", "1",
             "--tolerance", "1e-300"]
        )
        assert code == 3
        assert "NOT converged" in capsys.readouterr().out


class TestCalibrate:
    def test_prints_coefficients(self, capsys):
        assert main(["calibrate", "--size", "32", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "dense_flop" in out
        assert "sparse_expand" in out
