"""Named-matrix registry: registration, lookup, file loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, UnknownMatrixError
from repro.core.atmatrix import ATMatrix
from repro.errors import FormatError
from repro.formats import write_matrix_market
from repro.service import MatrixRegistry

from ..conftest import as_csr, random_sparse_array


@pytest.fixture
def registry(small_config: SystemConfig) -> MatrixRegistry:
    return MatrixRegistry(config=small_config)


class TestRegistration:
    def test_coo_input_is_partitioned(self, registry, rng):
        raw = random_sparse_array(rng, 64, 64, 0.2)
        at = registry.register("A", COOMatrix.from_dense(raw))
        assert isinstance(at, ATMatrix)
        np.testing.assert_allclose(at.to_dense(), raw)

    def test_csr_input_is_wrapped(self, registry, rng):
        raw = random_sparse_array(rng, 32, 32, 0.2)
        at = registry.register("A", as_csr(raw))
        assert registry.get("A") is at

    def test_reregistration_replaces(self, registry, rng):
        first = random_sparse_array(rng, 32, 32, 0.2)
        second = random_sparse_array(rng, 16, 16, 0.5)
        registry.register("A", COOMatrix.from_dense(first))
        registry.register("A", COOMatrix.from_dense(second))
        assert registry.get("A").shape == (16, 16)

    def test_empty_name_rejected(self, registry, rng):
        raw = random_sparse_array(rng, 8, 8, 0.5)
        with pytest.raises(FormatError):
            registry.register("", COOMatrix.from_dense(raw))

    def test_names_and_contains(self, registry, rng):
        raw = random_sparse_array(rng, 16, 16, 0.3)
        registry.register("b_matrix", COOMatrix.from_dense(raw))
        registry.register("a_matrix", COOMatrix.from_dense(raw))
        assert registry.names() == ["a_matrix", "b_matrix"]
        assert "a_matrix" in registry
        assert "other" not in registry
        assert len(registry) == 2


class TestLookup:
    def test_unknown_name_is_typed_error(self, registry):
        with pytest.raises(UnknownMatrixError, match="no matrix registered"):
            registry.get("ghost")

    def test_register_file_mtx(self, registry, rng, tmp_path):
        raw = random_sparse_array(rng, 32, 32, 0.2)
        path = tmp_path / "m.mtx"
        write_matrix_market(COOMatrix.from_dense(raw), path)
        at = registry.register_file("M", path)
        np.testing.assert_allclose(at.to_dense(), raw)
