"""Job model + store: validation, persistence, recovery, result integrity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import IntegrityError, UnknownJobError
from repro.errors import FormatError
from repro.service import JobRecord, JobSpec, JobState, JobStore


def spec(job_id: str = "j-1", **overrides) -> JobSpec:
    payload = {
        "job_id": job_id,
        "tenant": "t1",
        "op": "multiply",
        "a": "A",
        "b": "B",
    }
    payload.update(overrides)
    return JobSpec(**payload)


class TestJobSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(FormatError, match="unknown job op"):
            spec(op="transpose")

    def test_multiply_needs_b(self):
        with pytest.raises(FormatError, match="second matrix"):
            spec(b=None)

    def test_matvec_needs_rhs(self):
        with pytest.raises(FormatError, match="rhs"):
            spec(op="matvec", b=None)

    def test_json_round_trip(self):
        original = spec(
            op="solve",
            b=None,
            rhs=(1.0, 2.0, 3.0),
            params={"method": "jacobi", "tol": 1e-8},
        )
        # through actual JSON text, as the wire protocol would
        restored = JobSpec.from_json_dict(
            json.loads(json.dumps(original.to_json_dict()))
        )
        assert restored == original


class TestJobStore:
    def test_create_save_load(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(spec=spec(), submitted_at=123.0, reserved_bytes=42.0)
        store.create(record)
        loaded = store.load("j-1")
        assert loaded.spec == record.spec
        assert loaded.state is JobState.QUEUED
        assert loaded.reserved_bytes == 42.0

    def test_state_transitions_persist(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(spec=spec())
        store.create(record)
        record.state = JobState.FAILED
        record.error = "boom"
        record.error_type = "MemoryLimitError"
        store.save(record)
        loaded = store.load("j-1")
        assert loaded.state is JobState.FAILED
        assert loaded.error == "boom"
        assert loaded.error_type == "MemoryLimitError"

    def test_recover_returns_only_unfinished(self, tmp_path):
        store = JobStore(tmp_path)
        for job_id, state in [
            ("j-1", JobState.DONE),
            ("j-2", JobState.RUNNING),
            ("j-3", JobState.QUEUED),
            ("j-4", JobState.CANCELLED),
        ]:
            record = JobRecord(spec=spec(job_id), state=state)
            store.create(record)
        recovered = {record.spec.job_id for record in store.recover()}
        assert recovered == {"j-2", "j-3"}

    def test_load_all_sorted_by_submission(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(JobRecord(spec=spec("j-b"), submitted_at=2.0))
        store.create(JobRecord(spec=spec("j-a"), submitted_at=1.0))
        assert [r.spec.job_id for r in store.load_all()] == ["j-a", "j-b"]

    def test_unknown_job_id(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJobError):
            store.load("ghost")

    def test_invalid_job_ids_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(FormatError):
                store.job_dir(bad)


class TestResults:
    def test_result_round_trip_is_bit_identical(self, tmp_path, rng):
        store = JobStore(tmp_path)
        store.create(JobRecord(spec=spec()))
        values = rng.random((16, 16))
        digest = store.save_result("j-1", values)
        assert digest != 0
        assert store.has_result("j-1")
        loaded = store.load_result("j-1")
        assert np.array_equal(loaded, values)

    def test_corrupted_result_is_detected(self, tmp_path, rng):
        store = JobStore(tmp_path)
        store.create(JobRecord(spec=spec()))
        store.save_result("j-1", rng.random((8, 8)))
        path = tmp_path / "j-1" / "result.npz"
        with np.load(path) as archive:
            values, crc = archive["values"], archive["crc"]
        values = values.copy()
        values[0, 0] += 1.0  # silent bit-rot: values change, stored CRC doesn't
        np.savez(path, values=values, crc=crc)
        with pytest.raises(IntegrityError, match="CRC-32C"):
            store.load_result("j-1")

    def test_missing_result(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(JobRecord(spec=spec()))
        assert not store.has_result("j-1")
        with pytest.raises(UnknownJobError):
            store.load_result("j-1")
