"""Chaos acceptance: retried client + mangled wire + SIGKILLed server.

The end-to-end resilience guarantee of this PR, exercised in one test:
a :class:`repro.ServiceClient` drives a workload through the seeded
fault-injecting :class:`~tests.service.chaos.ChaosProxy` (dropped
connections, garbage bytes, mid-frame truncation, resets, latency)
against a server in another process that SIGKILLs itself mid-multiply.
After a restart on the same job directory the client retries through —
and every job has executed exactly once, with results bit-identical to
an unfaulted in-process run.

Set ``REPRO_CHAOS_METRICS=/path/to/metrics.json`` to export the injected
fault schedule and job outcomes (the CI chaos job uploads this file).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import CircuitOpenError, TransportError
from repro.resilience.retry import RetryPolicy
from repro.service.client import CircuitBreaker, Deadline, ServiceClient

from .chaos import ChaosProxy

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: seeds chosen so the first dozen connections of each phase walk all
#: six fault kinds (see chaos._fault_for) while staying mostly liveable
CHAOS_SEED_PHASE1 = 20260834
CHAOS_SEED_PHASE2 = 20260846
KILL_AFTER_FLUSHES = 4
DOOMED_JOB = "chaos-doomed"
#: matvec jobs are checkpoint-free, so they never trip the kill switch
VECTOR_JOBS = {"chaos-vec-a": ("A", 72), "chaos-vec-b": ("B", 88)}

#: generous budgets: each retry dials a fresh connection, i.e. a fresh
#: fault draw, so attempts bound the worst run of lossy connections.
CHAOS_RETRY = RetryPolicy(
    max_attempts=15, backoff_base_seconds=0.01, backoff_max_seconds=0.1
)

WORKLOAD = '''\
"""Deterministic workload shared by the killed and the restarted server."""
import numpy as np

from repro import COOMatrix, SystemConfig
from repro.service import MatrixRegistry

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build_registry():
    rng = np.random.default_rng(20260808)

    def heterogeneous(rows, cols):
        mask = rng.random((rows, cols)) < 0.06
        array = np.where(mask, rng.uniform(0.1, 1.0, (rows, cols)), 0.0)
        block = min(rows, cols) // 3
        array[:block, :block] = rng.uniform(0.1, 1.0, (block, block))
        return array

    registry = MatrixRegistry(config=CONFIG)
    registry.register("A", COOMatrix.from_dense(heterogeneous(96, 72)))
    registry.register("B", COOMatrix.from_dense(heterogeneous(72, 88)))
    return registry
'''

SERVER = '''\
"""Serve the chaos workload; optionally SIGKILL ourselves after N flushes."""
import asyncio
import os
import signal
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from workload import CONFIG, build_registry

from repro import CheckpointStore, MultiplyOptions
from repro.service import MatrixService, serve

job_dir, kill_after = sys.argv[1], int(sys.argv[2])

if kill_after:
    original_flush = CheckpointStore.flush

    def killing_flush(self):
        written = original_flush(self)
        if self.flushes >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return written

    CheckpointStore.flush = killing_flush


async def main():
    service = MatrixService(
        build_registry(),
        job_dir=job_dir,
        workers=1,
        options=MultiplyOptions(config=CONFIG, checkpoint_flush_pairs=1),
    )
    await service.start()
    server = await serve(service, port=0)
    port = server.sockets[0].getsockname()[1]
    print(f"PORT {port}", flush=True)
    stop = asyncio.Event()
    asyncio.get_running_loop().add_signal_handler(signal.SIGTERM, stop.set)
    async with server:
        await stop.wait()
    server.close()
    await server.wait_closed()
    await service.drain(timeout=10.0)


asyncio.run(main())
'''


@pytest.fixture
def scripts(tmp_path):
    (tmp_path / "workload.py").write_text(WORKLOAD, encoding="utf-8")
    server = tmp_path / "server.py"
    server.write_text(SERVER, encoding="utf-8")
    return server


def load_workload(tmp_path):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "chaos_workload", tmp_path / "workload.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def start_server(scripts, job_dir, kill_after: int):
    """Launch the server child; returns (process, listening port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_SRC)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    stderr_log = scripts.parent / f"server-stderr-{kill_after}.log"
    process = subprocess.Popen(
        [sys.executable, str(scripts), str(job_dir), str(kill_after)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=stderr_log.open("w"),
        text=True,
    )
    banner = process.stdout.readline()
    if not banner.startswith("PORT "):
        process.kill()
        process.wait(timeout=30)
        raise AssertionError(
            f"server never came up: {banner!r}\n{stderr_log.read_text()}"
        )
    return process, int(banner.split()[1])


def chaos_client(proxy: ChaosProxy) -> ServiceClient:
    return ServiceClient(
        "127.0.0.1",
        proxy.port,
        retry=CHAOS_RETRY,
        breaker=CircuitBreaker(failure_threshold=1_000_000),
    )


class TestChaosExactlyOnce:
    def test_mangled_wire_and_sigkill_yield_exactly_once_results(
        self, scripts, tmp_path
    ):
        from repro import MultiplyOptions, Session, atmult
        from repro.service import JobState, JobStore

        job_dir = tmp_path / "jobs"
        report: dict = {}

        # ---- phase 1: chaos-retried workload, server SIGKILLs mid-job --
        process, port = start_server(scripts, job_dir, KILL_AFTER_FLUSHES)
        phase1: dict[str, np.ndarray] = {}
        with ChaosProxy(port, seed=CHAOS_SEED_PHASE1) as proxy:
            with chaos_client(proxy) as client:
                deadline = Deadline(120.0)
                for name, (matrix, width) in VECTOR_JOBS.items():
                    submitted = client.submit(
                        tenant="chaos", op="matvec", a=matrix,
                        rhs=[1.0] * width, job_id=name,
                        idempotency_key=f"chaos-key-{name}",
                        deadline=deadline,
                    )
                    assert submitted == name
                for name in VECTOR_JOBS:
                    status = client.wait(name, timeout=120.0)
                    assert status["state"] == "done", status
                    phase1[name] = client.result(name)
                # The checkpointed multiply trips the kill switch at its
                # fourth flush; the submit ack itself may be lost to the
                # crash, which is exactly what the fixed job id is for.
                try:
                    client.submit(
                        tenant="chaos", op="multiply", a="A", b="B",
                        job_id=DOOMED_JOB,
                        idempotency_key="chaos-key-doomed",
                    )
                except (TransportError, CircuitOpenError):
                    pass
            assert process.wait(timeout=120) == -signal.SIGKILL
            report["phase1"] = proxy.snapshot()

        # The crash left a resumable scene: RUNNING record, journal intact.
        store = JobStore(job_dir)
        assert store.load(DOOMED_JOB).state is JobState.RUNNING
        survivors = sorted(
            store.checkpoint_dir(DOOMED_JOB).glob("pairs/pair-*.npz")
        )
        assert len(survivors) == KILL_AFTER_FLUSHES

        # ---- phase 2: restart on the same job dir, retry through ------
        process, port = start_server(scripts, job_dir, 0)
        try:
            phase2: dict[str, np.ndarray] = {}
            with ChaosProxy(port, seed=CHAOS_SEED_PHASE2) as proxy:
                with chaos_client(proxy) as client:
                    status = client.wait(DOOMED_JOB, timeout=120.0)
                    assert status["state"] == "done", status
                    doomed_values = client.result(DOOMED_JOB)
                    # Replaying every idempotent submit maps back to the
                    # original jobs — across the crash, none re-executes.
                    for name, (matrix, width) in VECTOR_JOBS.items():
                        replayed = client.submit(
                            tenant="chaos", op="matvec", a=matrix,
                            rhs=[1.0] * width, job_id=f"{name}-replay",
                            idempotency_key=f"chaos-key-{name}",
                        )
                        assert replayed == name
                        phase2[name] = client.result(name)
                    metrics = client.metrics()
                report["phase2"] = proxy.snapshot()
        finally:
            process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0  # drained cleanly

        # ---- the proxy really injected faults -------------------------
        injected = {
            kind: report["phase1"]["faults"][kind]
            + report["phase2"]["faults"][kind]
            for kind in report["phase1"]["faults"]
        }
        lossy = sum(
            count for kind, count in injected.items()
            if kind not in ("clean", "delay")
        )
        assert sum(injected.values()) >= 6, injected  # reconnect churn
        assert lossy >= 2, injected  # at least two mangled connections

        # ---- exactly once ---------------------------------------------
        assert metrics["jobs"] == {"done": 3}
        assert sorted(record.spec.job_id for record in store.load_all()) == sorted(
            [DOOMED_JOB, *VECTOR_JOBS]
        )

        # ---- bit-identical to an unfaulted in-process run -------------
        workload = load_workload(tmp_path)
        registry = workload.build_registry()
        reference, _ = atmult(
            registry.get("A"),
            registry.get("B"),
            options=MultiplyOptions(config=workload.CONFIG),
        )
        assert np.array_equal(doomed_values, reference.to_dense())
        session = Session(
            config=workload.CONFIG,
            options=MultiplyOptions(
                config=workload.CONFIG, checkpoint_flush_pairs=1
            ),
        )
        for name, (matrix, width) in VECTOR_JOBS.items():
            expected = session.matvec(registry.get(matrix), [1.0] * width)
            assert np.array_equal(phase1[name], expected)
            assert np.array_equal(phase2[name], phase1[name])

        report["jobs"] = {
            "done": metrics["jobs"]["done"],
            "journal_pairs_at_kill": len(survivors),
        }
        metrics_path = os.environ.get("REPRO_CHAOS_METRICS")
        if metrics_path:
            Path(metrics_path).write_text(
                json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
            )
