"""MatrixService acceptance: multi-tenant jobs, quotas, admission, protocol.

Covers the service-layer acceptance criteria: N concurrent jobs from
two tenants all finish correctly through one shared plan cache (hit
rate > 0 in the metrics export), a job whose estimated ρ̂_C footprint
exceeds the SLA is rejected with a typed error while smaller jobs
proceed, and the JSON-lines TCP endpoint round-trips the same flows.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import (
    AdmissionError,
    COOMatrix,
    QuotaExceededError,
    SystemConfig,
    UnknownJobError,
    UnknownMatrixError,
)
from repro.ioutil import crc32c
from repro.service import JobState, MatrixRegistry, MatrixService, serve
from repro.service.protocol import STREAM_LIMIT_BYTES

from ..conftest import random_sparse_array


def run(coro):
    return asyncio.run(coro)


def spd_array(rng, n: int) -> np.ndarray:
    base = random_sparse_array(rng, n, n, 0.1)
    return base @ base.T + n * np.eye(n)


@pytest.fixture
def registry(small_config: SystemConfig, rng) -> MatrixRegistry:
    registry = MatrixRegistry(config=small_config)
    raw = random_sparse_array(rng, 96, 96, 0.08)
    raw[:24, :24] = rng.random((24, 24))  # a dense corner worth planning for
    registry.register("A", COOMatrix.from_dense(raw))
    registry.register("B", COOMatrix.from_dense(raw.T.copy()))
    registry.register("SPD", COOMatrix.from_dense(spd_array(rng, 48)))
    registry.register("DENSE", COOMatrix.from_dense(rng.random((64, 64))))
    return registry


def dense_of(registry: MatrixRegistry, name: str) -> np.ndarray:
    return registry.get(name).to_dense()


class TestMultiTenantAcceptance:
    def test_concurrent_jobs_from_two_tenants(self, registry, tmp_path):
        """Six overlapping jobs, two tenants, one shared plan cache."""

        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", workers=3
            ) as service:
                jobs = []
                for index in range(3):
                    tenant = f"tenant-{index % 2}"
                    jobs.append(
                        (await service.submit(tenant=tenant, op="multiply",
                                              a="A", b="B"), "multiply")
                    )
                    jobs.append(
                        (await service.submit(tenant=tenant, op="matvec", a="A",
                                              rhs=np.ones(96)), "matvec")
                    )
                for job_id, _ in jobs:
                    status = await service.wait(job_id, timeout=120.0)
                    assert status.state is JobState.DONE, status.error
                results = [await service.result(job_id) for job_id, _ in jobs]
                return results, service.metrics()

        results, metrics = run(scenario())
        a = dense_of(registry, "A")
        b = dense_of(registry, "B")
        expected_mult = a @ b
        expected_vec = a @ np.ones(96)
        for index, values in enumerate(results):
            if index % 2 == 0:
                np.testing.assert_allclose(values, expected_mult, atol=1e-9)
            else:
                np.testing.assert_allclose(values, expected_vec, atol=1e-9)
        # identical topologies across tenants → shared plan-cache hits
        assert metrics["plan_cache"]["hit_rate"] > 0
        assert metrics["jobs"] == {"done": 6}
        latency_keys = [
            name for name in metrics["metrics"]
            if name.startswith("service.latency_seconds.")
        ]
        assert set(latency_keys) == {
            "service.latency_seconds.tenant-0",
            "service.latency_seconds.tenant-1",
        }

    def test_solve_job_matches_direct_solver(self, registry, tmp_path, rng):
        rhs = rng.random(48)

        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                job_id = await service.submit(
                    tenant="t1", op="solve", a="SPD", rhs=rhs,
                    params={"method": "cg", "tolerance": 1e-10},
                )
                status = await service.wait(job_id, timeout=120.0)
                assert status.state is JobState.DONE, status.error
                return await service.result(job_id)

        solution = run(scenario())
        residual = dense_of(registry, "SPD") @ solution - rhs
        assert np.linalg.norm(residual) < 1e-6


class TestAdmissionAndQuotas:
    def test_oversized_job_rejected_smaller_job_proceeds(
        self, registry, tmp_path
    ):
        """The SLA splits jobs: big A@B bounces, the 64x64 product runs."""
        sla = 40 * 1024  # under A@B's ~70 KiB floor, over D@D's 32 KiB

        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", memory_limit_bytes=sla
            ) as service:
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(
                        tenant="greedy", op="multiply", a="A", b="B"
                    )
                assert excinfo.value.tenant == "greedy"
                assert excinfo.value.limit_bytes == sla
                assert excinfo.value.estimated_bytes > sla
                ok_job = await service.submit(
                    tenant="modest", op="multiply", a="DENSE", b="DENSE"
                )
                status = await service.wait(ok_job, timeout=120.0)
                metrics = service.metrics()
                return status, await service.result(ok_job), metrics

        status, values, metrics = run(scenario())
        assert status.state is JobState.DONE, status.error
        dense = dense_of(registry, "DENSE")
        np.testing.assert_allclose(values, dense @ dense, atol=1e-9)
        assert metrics["admission"]["rejected"] == 1

    def test_rejected_submission_leaves_no_job_state(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", memory_limit_bytes=40 * 1024
            ) as service:
                with pytest.raises(AdmissionError):
                    await service.submit(
                        tenant="t", op="multiply", a="A", b="B"
                    )
                return service.metrics()

        metrics = run(scenario())
        assert metrics["jobs"] == {}
        assert not any((tmp_path / "jobs").iterdir())

    def test_tenant_quota_sheds_load(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", workers=1, tenant_quota=1
            ) as service:
                first = await service.submit(
                    tenant="t1", op="multiply", a="A", b="B"
                )
                with pytest.raises(QuotaExceededError) as excinfo:
                    await service.submit(tenant="t1", op="matvec", a="A",
                                         rhs=np.ones(96))
                assert excinfo.value.tenant == "t1"
                assert excinfo.value.quota == 1
                # another tenant is unaffected by t1's quota
                other = await service.submit(tenant="t2", op="matvec", a="A",
                                             rhs=np.ones(96))
                await service.wait(first, timeout=120.0)
                await service.wait(other, timeout=120.0)
                return service.metrics()

        metrics = run(scenario())
        assert metrics["admission"]["shed"] == 1

    def test_global_queue_depth_sheds_load(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", workers=1,
                tenant_quota=10, max_queue_depth=2,
            ) as service:
                ids = []
                for tenant in ("t1", "t2"):
                    ids.append(await service.submit(
                        tenant=tenant, op="multiply", a="A", b="B"
                    ))
                with pytest.raises(QuotaExceededError, match="queue is full"):
                    await service.submit(tenant="t3", op="matvec", a="A",
                                         rhs=np.ones(96))
                for job_id in ids:
                    await service.wait(job_id, timeout=120.0)

        run(scenario())


class TestJobLifecycle:
    def test_unknown_matrix_and_job(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                with pytest.raises(UnknownMatrixError):
                    await service.submit(tenant="t", op="multiply",
                                         a="ghost", b="B")
                with pytest.raises(UnknownJobError):
                    await service.status("no-such-job")

        run(scenario())

    def test_cancel_queued_job(self, registry, tmp_path):
        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            # not started: no workers drain the queue, jobs stay QUEUED
            job_id = await service.submit(tenant="t", op="matvec", a="A",
                                          rhs=np.ones(96))
            assert await service.cancel(job_id)
            status = await service.status(job_id)
            assert status.state is JobState.CANCELLED
            assert not await service.cancel(job_id)  # already terminal

        run(scenario())

    def test_failed_job_reports_typed_error(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                job_id = await service.submit(
                    tenant="t", op="solve", a="SPD", rhs=np.ones(48),
                    params={"method": "cg", "max_iterations": 1,
                            "tolerance": 1e-14},
                )
                status = await service.wait(job_id, timeout=120.0)
                return status, service.metrics()

        status, metrics = run(scenario())
        assert status.state is JobState.FAILED
        assert status.error_type == "ConvergenceError"
        assert metrics["metrics"]["service.jobs_failed"]["value"] == 1


class TestProtocol:
    def test_tcp_round_trip(self, registry, tmp_path):
        """submit → poll → result over the JSON-lines TCP endpoint."""

        async def request(reader, writer, payload):
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=STREAM_LIMIT_BYTES
                )
                assert (await request(reader, writer, {"op": "ping"}))["ok"]
                listing = await request(reader, writer, {"op": "matrices"})
                assert listing["matrices"] == ["A", "B", "DENSE", "SPD"]
                submitted = await request(reader, writer, {
                    "op": "submit", "tenant": "wire",
                    "job": {"op": "multiply", "a": "A", "b": "B"},
                })
                assert submitted["ok"], submitted
                job_id = submitted["job_id"]
                for _ in range(3000):
                    status = await request(reader, writer,
                                           {"op": "status", "job_id": job_id})
                    if status["status"]["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.01)
                assert status["status"]["state"] == "done", status
                result = await request(reader, writer,
                                       {"op": "result", "job_id": job_id})
                metrics = await request(reader, writer, {"op": "metrics"})
                # typed errors cross the wire without closing the stream
                error = await request(reader, writer, {
                    "op": "submit", "tenant": "wire",
                    "job": {"op": "multiply", "a": "ghost", "b": "B"},
                })
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return result["result"], metrics["metrics"], error

        payload, metrics, error = run(scenario())
        values = np.array(payload["values"]).reshape(payload["shape"])
        expected = dense_of(registry, "A") @ dense_of(registry, "B")
        np.testing.assert_allclose(values, expected, atol=1e-9)
        digest = crc32c(np.ascontiguousarray(values).tobytes())
        assert digest == payload["crc32c"]
        assert metrics["jobs"] == {"done": 1}
        assert not error["ok"]
        assert error["error"]["type"] == "UnknownMatrixError"

    def test_malformed_requests_answered_not_fatal(self, registry, tmp_path):
        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = json.loads(await reader.readline())
                writer.write(json.dumps({"op": "frobnicate"}).encode() + b"\n")
                await writer.drain()
                unknown = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return bad, unknown

        bad, unknown = run(scenario())
        assert not bad["ok"] and bad["error"]["type"] == "BadRequest"
        assert not unknown["ok"] and unknown["error"]["type"] == "FormatError"
