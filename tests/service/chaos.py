"""Deterministic fault-injecting TCP proxy for chaos-testing the service.

:class:`ChaosProxy` sits between a :class:`repro.ServiceClient` and a
``repro serve`` endpoint and mangles traffic per *connection*, driven by
the library's seeded-hash machinery (:func:`repro.resilience.faults.
stable_unit`) so every run of a given seed injects the identical fault
schedule regardless of thread timing:

=============  ========================================================
fault          behaviour
=============  ========================================================
``drop``       accept, then close immediately (connect storms)
``garbage``    prefix the first server response with garbage bytes
``truncate``   cut the first server response mid-frame, then close
``reset``      forward a budgeted number of response bytes, then RST
``delay``      add latency to every forwarded chunk
``clean``      pure passthrough
=============  ========================================================

Every surviving connection additionally retires after a seeded number of
complete response *frames* (cut at newline boundaries, so even large
single-frame payloads deliver intact).  A long-lived client is thereby
forced to reconnect every few exchanges, walking the whole fault
schedule instead of parking forever on one lucky clean connection.

Faults are only injected on the server→client direction: requests reach
the server intact, so a mangled exchange is always a *lost response*,
never a corrupted submission — exactly the failure idempotency keys
exist for.  The proxy is threaded and synchronous on purpose: it needs
no event loop and works against a server in another process.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any

from repro.resilience.faults import stable_unit

__all__ = ["ChaosProxy", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "garbage", "truncate", "reset", "delay", "clean")

_GARBAGE = b"\xfe\xfd\x00{{{ chaos \xff"
_CHUNK = 65536


def _hard_close(sock: socket.socket, *, rst: bool = False) -> None:
    """Tear a socket down so the peer notices *now* (FIN, or RST)."""
    if rst:
        # SO_LINGER with zero timeout: the close sends RST when the
        # kernel reference drops, a hard reset instead of a tidy FIN.
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _fault_for(seed: int, connection: int) -> str:
    """The deterministic fault of connection number ``connection``."""
    draw = stable_unit(seed, "chaos-fault", connection)
    if draw < 0.10:
        return "drop"
    if draw < 0.20:
        return "garbage"
    if draw < 0.30:
        return "truncate"
    if draw < 0.40:
        return "reset"
    if draw < 0.55:
        return "delay"
    return "clean"


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of one target port."""

    def __init__(
        self,
        target_port: int,
        *,
        seed: int,
        host: str = "127.0.0.1",
        target_host: str = "127.0.0.1",
    ) -> None:
        self.seed = seed
        self.target = (target_host, target_port)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._threads: list[threading.Thread] = []
        self._sockets: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closing = False
        self._connections = 0
        #: fault kind -> number of connections it was applied to
        self.stats: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            _hard_close(sock)
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> ChaosProxy:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly export of the injected-fault schedule so far."""
        with self._lock:
            return {"seed": self.seed, "connections": self._connections,
                    "faults": dict(self.stats)}

    # -- internals ---------------------------------------------------------
    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._sockets.append(sock)

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                index = self._connections
                self._connections += 1
            fault = _fault_for(self.seed, index)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(client, index, fault),
                name=f"chaos-conn-{index}",
                daemon=True,
            )
            with self._lock:
                self.stats[fault] += 1
                self._threads.append(thread)
            thread.start()

    def _serve_connection(
        self, client: socket.socket, index: int, fault: str
    ) -> None:
        self._track(client)
        if fault == "drop":
            _hard_close(client)
            return
        try:
            upstream = socket.create_connection(self.target, timeout=10.0)
        except OSError:
            _hard_close(client)
            return
        self._track(upstream)

        delay = 0.02 if fault == "delay" else 0.0
        budget: int | None = None
        mangle = b""
        linger_reset = False
        if fault == "truncate":
            # cut inside the first response frame (responses are >10 B)
            budget = 5 + int(stable_unit(self.seed, "truncate", index) * 5)
        elif fault == "reset":
            budget = 256 + int(stable_unit(self.seed, "reset", index) * 3840)
            linger_reset = True
        elif fault == "garbage":
            mangle = _GARBAGE
        # bounded lifetime: retire after 1-3 complete response frames
        frame_budget = 1 + int(stable_unit(self.seed, "frames", index) * 3)

        # client -> server: always intact (see module docstring)
        up = threading.Thread(
            target=self._pump,
            args=(client, upstream),
            kwargs={"delay": 0.0},
            name=f"chaos-up-{index}",
            daemon=True,
        )
        with self._lock:
            self._threads.append(up)
        up.start()
        # server -> client: where the configured fault applies
        self._pump(
            upstream,
            client,
            delay=delay,
            budget=budget,
            mangle=mangle,
            linger_reset=linger_reset,
            frame_budget=frame_budget,
        )

    @staticmethod
    def _pump(
        src: socket.socket,
        dst: socket.socket,
        *,
        delay: float = 0.0,
        budget: int | None = None,
        mangle: bytes = b"",
        linger_reset: bool = False,
        frame_budget: int | None = None,
    ) -> None:
        import time

        forwarded = 0
        retire = False
        try:
            while not retire:
                data = src.recv(_CHUNK)
                if not data:
                    break
                if mangle:
                    data = mangle + data
                    mangle = b""
                if budget is not None:
                    data = data[: max(0, budget - forwarded)]
                if frame_budget is not None and data.count(b"\n") >= frame_budget:
                    # keep exactly the remaining whole frames, then retire
                    cut = -1
                    for _ in range(frame_budget):
                        cut = data.index(b"\n", cut + 1)
                    data = data[: cut + 1]
                    retire = True
                elif frame_budget is not None:
                    frame_budget -= data.count(b"\n")
                if delay:
                    time.sleep(delay)
                if data:
                    dst.sendall(data)
                    forwarded += len(data)
                if budget is not None and forwarded >= budget:
                    break
        except OSError:
            pass
        finally:
            # shutdown() before close(): a peer pump blocked in recv()
            # on the same socket pins the kernel file reference, so a
            # bare close() would neither send FIN nor wake it — the
            # client would stall for its full request timeout instead
            # of failing over immediately.
            _hard_close(dst, rst=linger_reset)
            _hard_close(src)
