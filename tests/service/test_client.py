"""ServiceClient resilience: deadlines, retries, breaker, idempotency.

The synchronous client runs inside the event loop's default executor so
one asyncio test can serve and consume at the same time; transport
faults are produced by purpose-built flaky listeners.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import numpy as np
import pytest

from repro import (
    CircuitOpenError,
    COOMatrix,
    DeadlineExceededError,
    SystemConfig,
    TransportError,
    UnknownMatrixError,
)
from repro.resilience.retry import RetryPolicy
from repro.service import MatrixRegistry, MatrixService, serve
from repro.service.client import CircuitBreaker, Deadline, ServiceClient

from ..conftest import random_sparse_array


def run(coro):
    return asyncio.run(coro)


FAST_RETRY = RetryPolicy(
    max_attempts=4, backoff_base_seconds=0.005, backoff_max_seconds=0.02
)


@pytest.fixture
def registry(small_config: SystemConfig, rng) -> MatrixRegistry:
    registry = MatrixRegistry(config=small_config)
    raw = random_sparse_array(rng, 96, 96, 0.08)
    raw[:24, :24] = rng.random((24, 24))
    registry.register("A", COOMatrix.from_dense(raw))
    registry.register("B", COOMatrix.from_dense(raw.T.copy()))
    return registry


def closed_port() -> int:
    """A port that was just released: connections to it are refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestDeadline:
    def test_remaining_and_expiry(self):
        deadline = Deadline(0.05)
        assert 0.0 < deadline.remaining() <= 0.05
        assert not deadline.expired
        time.sleep(0.06)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="submit"):
            deadline.check("submit")

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=60.0)
        for _ in range(2):
            breaker.record_failure()
        breaker.before_attempt()  # still closed at 2 of 3
        breaker.record_failure()
        assert breaker.open
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_attempt()
        assert excinfo.value.retry_after_seconds > 0

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.before_attempt()  # consecutive count restarted

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.01)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()
        time.sleep(0.02)
        breaker.before_attempt()  # half-open: the probe is allowed
        breaker.record_success()
        assert not breaker.open


class TestClientAgainstLiveService:
    def test_full_job_lifecycle(self, registry, tmp_path):
        async def scenario():
            loop = asyncio.get_running_loop()
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                with ServiceClient("127.0.0.1", port, retry=FAST_RETRY) as client:
                    def drive():
                        assert client.ping()
                        health = client.health()
                        assert health["status"] == "ok" and health["started"]
                        ready = client.ready()
                        assert ready["ready"], ready
                        assert client.matrices() == ["A", "B"]
                        deadline = Deadline(120.0)
                        job_id = client.submit(
                            tenant="wire", op="multiply", a="A", b="B",
                            deadline=deadline,
                        )
                        status = client.wait(
                            job_id, timeout=120.0, deadline=deadline
                        )
                        assert status["state"] == "done", status
                        values = client.result(job_id)
                        metrics = client.metrics()
                        return values, metrics
                    values, metrics = await loop.run_in_executor(None, drive)
                await service.stop()
            return values, metrics

        values, metrics = run(scenario())
        a = registry.get("A").to_dense()
        b = registry.get("B").to_dense()
        np.testing.assert_allclose(values, a @ b, atol=1e-9)
        assert metrics["jobs"] == {"done": 1}

    def test_remote_errors_surface_as_typed_classes(self, registry, tmp_path):
        async def scenario():
            loop = asyncio.get_running_loop()
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                with ServiceClient("127.0.0.1", port, retry=FAST_RETRY) as client:
                    def drive():
                        with pytest.raises(UnknownMatrixError):
                            client.submit(
                                tenant="t", op="multiply", a="ghost", b="B"
                            )
                        # the connection survived the typed rejection
                        assert client.ping()
                    await loop.run_in_executor(None, drive)
                await service.stop()

        run(scenario())

    def test_submit_retry_reuses_one_idempotency_key(self, registry, tmp_path):
        """Two identical submits with one key execute exactly once."""

        async def scenario():
            loop = asyncio.get_running_loop()
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                with ServiceClient("127.0.0.1", port, retry=FAST_RETRY) as client:
                    def drive():
                        first = client.submit(
                            tenant="t", op="multiply", a="A", b="B",
                            idempotency_key="lost-response-retry",
                        )
                        second = client.submit(
                            tenant="t", op="multiply", a="A", b="B",
                            idempotency_key="lost-response-retry",
                        )
                        assert second == first
                        client.wait(first, timeout=120.0)
                        return client.metrics()
                    metrics = await loop.run_in_executor(None, drive)
                await service.stop()
            return metrics

        metrics = run(scenario())
        assert metrics["jobs"] == {"done": 1}


class TestTransportResilience:
    def test_retries_through_connections_dropped_at_accept(self):
        """A listener that kills its first two connections; retry wins."""

        async def scenario():
            loop = asyncio.get_running_loop()
            kills = {"left": 2}

            async def handler(reader, writer):
                if kills["left"] > 0:
                    kills["left"] -= 1
                    writer.close()
                    return
                line = await reader.readline()
                assert json.loads(line)["op"] == "ping"
                writer.write(json.dumps({"ok": True, "pong": True}).encode() + b"\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                with ServiceClient(
                    "127.0.0.1", port, retry=FAST_RETRY,
                    breaker=CircuitBreaker(failure_threshold=10),
                ) as client:
                    assert await loop.run_in_executor(None, client.ping)
            assert kills["left"] == 0

        run(scenario())

    def test_exhausted_retries_raise_transport_error(self):
        port = closed_port()
        with ServiceClient(
            "127.0.0.1", port,
            retry=RetryPolicy(max_attempts=2, backoff_base_seconds=0.001),
            breaker=CircuitBreaker(failure_threshold=100),
        ) as client:
            with pytest.raises(TransportError):
                client.ping()

    def test_breaker_opens_and_fails_fast(self):
        port = closed_port()
        with ServiceClient(
            "127.0.0.1", port,
            retry=RetryPolicy(max_attempts=2, backoff_base_seconds=0.001),
            breaker=CircuitBreaker(failure_threshold=2, reset_seconds=60.0),
        ) as client:
            with pytest.raises(TransportError):
                client.ping()  # two attempts = two transport failures
            assert client.breaker.open
            started = time.monotonic()
            with pytest.raises(CircuitOpenError):
                client.ping()
            assert time.monotonic() - started < 0.5  # fail-fast, no dial

    def test_client_deadline_stops_retrying(self):
        port = closed_port()
        with ServiceClient(
            "127.0.0.1", port,
            retry=RetryPolicy(max_attempts=50, backoff_base_seconds=0.01),
            breaker=CircuitBreaker(failure_threshold=1000),
        ) as client:
            with pytest.raises(DeadlineExceededError):
                client.ping(deadline=Deadline(0.05))

    def test_expired_deadline_rejects_before_sending(self, registry, tmp_path):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        client = ServiceClient("127.0.0.1", 1)  # never dialed
        with pytest.raises(DeadlineExceededError):
            client.submit(
                tenant="t", op="multiply", a="A", b="B", deadline=deadline
            )
