"""Protocol error paths: every malformed input answers typed, nothing dies.

Satellite contract: truncated frames, oversized frames, unknown verbs,
garbage bytes and a corrupted result payload each produce a typed error
response (or a clean connection close) and leave the server — and where
applicable the same connection — fully usable afterwards.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig
from repro.service import MatrixRegistry, MatrixService, serve
from repro.service import protocol as protocol_module

from ..conftest import random_sparse_array


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def registry(small_config: SystemConfig, rng) -> MatrixRegistry:
    registry = MatrixRegistry(config=small_config)
    raw = random_sparse_array(rng, 64, 64, 0.1)
    registry.register("A", COOMatrix.from_dense(raw))
    return registry


async def request(reader, writer, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


class TestFrameBounds:
    def test_oversized_frame_typed_error_connection_survives(
        self, registry, tmp_path, monkeypatch
    ):
        """A frame past the cap answers FrameTooLargeError, then serves on."""
        monkeypatch.setattr(protocol_module, "STREAM_LIMIT_BYTES", 4096)

        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"x" * 20000 + b"\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                # the same connection still answers real requests
                pong = await request(reader, writer, {"op": "ping"})
                listing = await request(reader, writer, {"op": "matrices"})
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return error, pong, listing

        error, pong, listing = run(scenario())
        assert not error["ok"]
        assert error["error"]["type"] == "FrameTooLargeError"
        assert "4096" in error["error"]["message"]
        assert pong["ok"] and pong["pong"]
        assert listing["matrices"] == ["A"]

    def test_pipelined_request_after_oversized_frame_is_preserved(
        self, registry, tmp_path, monkeypatch
    ):
        """Draining the oversized frame must not eat the next frame."""
        monkeypatch.setattr(protocol_module, "STREAM_LIMIT_BYTES", 4096)

        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                # one write: oversized frame AND the follow-up ping
                writer.write(
                    b"y" * 20000 + b"\n"
                    + json.dumps({"op": "ping"}).encode() + b"\n"
                )
                await writer.drain()
                error = json.loads(await reader.readline())
                pong = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return error, pong

        error, pong = run(scenario())
        assert error["error"]["type"] == "FrameTooLargeError"
        assert pong["ok"] and pong["pong"]

    def test_truncated_frame_closes_quietly_server_survives(
        self, registry, tmp_path
    ):
        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                # disconnect mid-frame: no newline ever arrives
                _, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b'{"op": "sub')
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                # a fresh connection is served normally
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                pong = await request(reader, writer, {"op": "ping"})
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return pong

        pong = run(scenario())
        assert pong["ok"] and pong["pong"]


class TestMalformedRequests:
    def test_garbage_bytes_then_unknown_verb_then_recovery(
        self, registry, tmp_path
    ):
        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"\x00\xff\xfe not json at all\n")
                await writer.drain()
                garbage = json.loads(await reader.readline())
                unknown = await request(reader, writer, {"op": "frobnicate"})
                non_object = await request(reader, writer, [1, 2, 3])
                missing_job = await request(
                    reader, writer, {"op": "submit", "tenant": "t"}
                )
                pong = await request(reader, writer, {"op": "ping"})
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return garbage, unknown, non_object, missing_job, pong

        garbage, unknown, non_object, missing_job, pong = run(scenario())
        assert not garbage["ok"]
        assert garbage["error"]["type"] == "BadRequest"
        assert not unknown["ok"]
        assert unknown["error"]["type"] == "FormatError"
        assert not non_object["ok"]
        assert non_object["error"]["type"] == "FormatError"
        assert not missing_job["ok"]
        assert missing_job["error"]["type"] == "FormatError"
        assert pong["ok"]


class TestResultIntegrity:
    def test_corrupted_result_payload_yields_typed_error(
        self, registry, tmp_path
    ):
        """A result whose stored CRC no longer matches answers typed."""

        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                submitted = await request(reader, writer, {
                    "op": "submit", "tenant": "t",
                    "job": {"op": "multiply", "a": "A", "b": "A"},
                })
                job_id = submitted["job_id"]
                for _ in range(3000):
                    status = await request(
                        reader, writer, {"op": "status", "job_id": job_id}
                    )
                    if status["status"]["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.01)
                assert status["status"]["state"] == "done", status

                # Corrupt the persisted values but keep the stored digest:
                # a well-formed archive whose content silently changed.
                path = tmp_path / "jobs" / job_id / "result.npz"
                with np.load(path) as archive:
                    values = np.asarray(archive["values"])
                    crc = np.asarray(archive["crc"])
                np.savez(path, values=values + 1.0, crc=crc)

                error = await request(
                    reader, writer, {"op": "result", "job_id": job_id}
                )
                pong = await request(reader, writer, {"op": "ping"})
                writer.close()
                await writer.wait_closed()
                await service.stop()
                return error, pong

        error, pong = run(scenario())
        assert not error["ok"]
        assert error["error"]["type"] == "IntegrityError"
        assert "CRC-32C" in error["error"]["message"]
        assert pong["ok"]  # connection survived the integrity failure
