"""Deadline propagation and resumable cancellation through MatrixService.

Acceptance criteria under test: a job whose ``deadline_seconds`` budget
expires lands ``DEADLINE_EXCEEDED`` with its checkpoint intact, and
resubmitting the same job id resumes from the journal and produces a
bit-identical result.  Explicit cancellation of a RUNNING job behaves
the same way with ``CANCELLED``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig
from repro.errors import FormatError
from repro.service import JobState, MatrixRegistry, MatrixService

from ..conftest import random_sparse_array


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def registry(small_config: SystemConfig, rng) -> MatrixRegistry:
    registry = MatrixRegistry(config=small_config)
    raw = random_sparse_array(rng, 96, 96, 0.08)
    raw[:24, :24] = rng.random((24, 24))
    registry.register("A", COOMatrix.from_dense(raw))
    registry.register("B", COOMatrix.from_dense(raw.T.copy()))
    return registry


class TestDeadlineValidation:
    def test_non_positive_deadline_rejected_at_submit(self, registry, tmp_path):
        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            with pytest.raises(FormatError):
                await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    deadline_seconds=0.0,
                )

        run(scenario())

    def test_generous_deadline_does_not_disturb_the_job(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                job_id = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    deadline_seconds=600.0,
                )
                status = await service.wait(job_id, timeout=120.0)
                assert status.state is JobState.DONE, status.error
                return await service.result(job_id)

        values = run(scenario())
        a = registry.get("A").to_dense()
        b = registry.get("B").to_dense()
        np.testing.assert_allclose(values, a @ b, atol=1e-9)


class TestDeadlineExpiry:
    def test_expired_deadline_lands_deadline_exceeded_and_resumes(
        self, registry, tmp_path
    ):
        """Expiry → DEADLINE_EXCEEDED; resubmit same id → bit-identical."""

        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                clean = await service.submit(
                    tenant="t", op="multiply", a="A", b="B"
                )
                assert (await service.wait(clean, timeout=120.0)).state is (
                    JobState.DONE
                )
                reference = await service.result(clean)

                doomed = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    job_id="doomed-job", deadline_seconds=0.001,
                )
                status = await service.wait(doomed, timeout=120.0)
                assert status.state is JobState.DEADLINE_EXCEEDED, status
                assert status.error_type == "DeadlineExceededError"
                assert status.state.resumable

                # The job directory (and any checkpoint) survived; the
                # same job id resubmits and runs to completion.
                resubmitted = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    job_id="doomed-job",
                )
                assert resubmitted == "doomed-job"
                final = await service.wait(resubmitted, timeout=120.0)
                assert final.state is JobState.DONE, final.error
                values = await service.result(resubmitted)
                metrics = service.metrics()
                return reference, values, metrics

        reference, values, metrics = run(scenario())
        assert np.array_equal(values, reference)  # bit-identical
        counters = metrics["metrics"]
        assert counters["service.jobs_deadline_exceeded"]["value"] == 1

    def test_deadline_expired_while_queued(self, registry, tmp_path):
        """A job that never reaches a worker in time still lands typed."""

        async def scenario():
            service = MatrixService(registry, job_dir=tmp_path / "jobs")
            # Submit before start(): nothing drains the queue yet, so the
            # budget burns down while the job is QUEUED.
            job_id = await service.submit(
                tenant="t", op="multiply", a="A", b="B",
                deadline_seconds=0.01,
            )
            await asyncio.sleep(0.05)
            async with service:
                status = await service.wait(job_id, timeout=30.0)
            return status

        status = run(scenario())
        assert status.state is JobState.DEADLINE_EXCEEDED
        assert "deadline expired" in (status.error or "")


class TestRunningJobCancellation:
    def test_cancel_running_job_is_resumable(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs", workers=1
            ) as service:
                clean = await service.submit(
                    tenant="t", op="multiply", a="A", b="B"
                )
                await service.wait(clean, timeout=120.0)
                reference = await service.result(clean)

                job_id = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    job_id="cancel-me",
                )
                # Cancel as soon as the worker marks it RUNNING; if the
                # multiply wins the race and finishes, that is fine too —
                # cancel() then reports False on the terminal job.
                cancelled = False
                for _ in range(3000):
                    state = (await service.status(job_id)).state
                    if state is JobState.RUNNING:
                        cancelled = await service.cancel(job_id)
                        break
                    if state.terminal:
                        break
                    await asyncio.sleep(0.001)
                status = await service.wait(job_id, timeout=120.0)
                assert status.state in (JobState.CANCELLED, JobState.DONE)
                if status.state is JobState.CANCELLED:
                    assert cancelled
                    assert status.state.resumable
                    resubmitted = await service.submit(
                        tenant="t", op="multiply", a="A", b="B",
                        job_id="cancel-me",
                    )
                    status = await service.wait(resubmitted, timeout=120.0)
                    assert status.state is JobState.DONE, status.error
                values = await service.result(job_id)
                return reference, values

        reference, values = run(scenario())
        assert np.array_equal(values, reference)


class TestIdempotentSubmission:
    def test_same_key_returns_original_job(self, registry, tmp_path):
        async def scenario():
            async with MatrixService(
                registry, job_dir=tmp_path / "jobs"
            ) as service:
                first = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    idempotency_key="retry-token-1",
                )
                second = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    idempotency_key="retry-token-1",
                )
                assert second == first
                await service.wait(first, timeout=120.0)
                metrics = service.metrics()
                return metrics

        metrics = run(scenario())
        assert metrics["jobs"] == {"done": 1}  # executed exactly once

    def test_idempotency_map_survives_restart(self, registry, tmp_path):
        async def scenario():
            job_dir = tmp_path / "jobs"
            async with MatrixService(registry, job_dir=job_dir) as service:
                first = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    idempotency_key="durable-token",
                )
                await service.wait(first, timeout=120.0)
            async with MatrixService(registry, job_dir=job_dir) as service:
                second = await service.submit(
                    tenant="t", op="multiply", a="A", b="B",
                    idempotency_key="durable-token",
                )
                return first, second

        first, second = run(scenario())
        assert second == first
