"""Water-level admission control: typed rejection + footprint accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AdmissionError, COOMatrix, SystemConfig
from repro.observe import Observation
from repro.service import AdmissionController, MatrixRegistry

from ..conftest import random_sparse_array


@pytest.fixture
def registry(small_config: SystemConfig) -> MatrixRegistry:
    return MatrixRegistry(config=small_config)


def dense_pair(registry: MatrixRegistry, rng) -> tuple:
    raw = rng.random((64, 64))  # fully dense: large, incompressible product
    a = registry.register("A", COOMatrix.from_dense(raw))
    b = registry.register("B", COOMatrix.from_dense(raw))
    return a, b


class TestMultiplyAdmission:
    def test_no_sla_admits_with_zero_reservation(self, registry, rng):
        a, b = dense_pair(registry, rng)
        controller = AdmissionController(None, config=registry.config)
        ticket = controller.check_multiply(a, b, tenant="t1")
        assert ticket.reserved_bytes == 0.0
        assert ticket.estimated_bytes > 0.0

    def test_generous_sla_admits(self, registry, rng):
        a, b = dense_pair(registry, rng)
        controller = AdmissionController(1 << 30, config=registry.config)
        ticket = controller.check_multiply(a, b, tenant="t1")
        assert 0.0 < ticket.reserved_bytes <= 1 << 30

    def test_impossible_sla_is_typed_rejection(self, registry, rng):
        a, b = dense_pair(registry, rng)
        observation = Observation()
        controller = AdmissionController(
            64.0, config=registry.config, metrics=observation.metrics
        )
        with pytest.raises(AdmissionError) as excinfo:
            controller.check_multiply(a, b, tenant="t1")
        assert excinfo.value.tenant == "t1"
        assert excinfo.value.limit_bytes == 64.0
        assert excinfo.value.estimated_bytes > 64.0
        assert observation.metrics.value("service.admission.rejected") == 1

    def test_sparse_product_passes_where_dense_cannot(self, registry, rng):
        raw = random_sparse_array(rng, 64, 64, 0.01)
        a = registry.register("SA", COOMatrix.from_dense(raw))
        b = registry.register("SB", COOMatrix.from_dense(raw))
        config = registry.config
        all_dense = 64 * 64 * config.dense_element_bytes
        controller = AdmissionController(all_dense / 4, config=config)
        ticket = controller.check_multiply(a, b, tenant="t1")
        assert ticket.reserved_bytes <= all_dense / 4


class TestVectorAdmission:
    def test_vector_footprint_is_one_column(self, registry, rng):
        a, _ = dense_pair(registry, rng)
        controller = AdmissionController(1 << 20, config=registry.config)
        ticket = controller.check_vector(a, tenant="t1")
        assert ticket.reserved_bytes == 64 * registry.config.dense_element_bytes

    def test_vector_rejection(self, registry, rng):
        a, _ = dense_pair(registry, rng)
        controller = AdmissionController(8.0, config=registry.config)
        with pytest.raises(AdmissionError):
            controller.check_vector(a, tenant="t1")


class TestFootprintAccounting:
    def test_acquire_release_cycle(self, small_config):
        controller = AdmissionController(1000.0, config=small_config)
        assert controller.try_acquire(600.0)
        assert controller.in_flight_bytes == 600.0
        assert not controller.try_acquire(600.0)  # would breach the SLA
        assert controller.try_acquire(300.0)
        controller.release(600.0)
        controller.release(300.0)
        assert controller.in_flight_bytes == 0.0
        assert controller.remaining_bytes() == 1000.0

    def test_empty_service_never_deadlocks(self, small_config):
        controller = AdmissionController(100.0, config=small_config)
        # an admitted-but-large reservation is granted when nothing runs
        assert controller.try_acquire(150.0)
        controller.release(150.0)

    def test_no_sla_accounting_is_noop(self, small_config):
        controller = AdmissionController(None, config=small_config)
        assert controller.try_acquire(1e12)
        controller.release(1e12)
        assert controller.remaining_bytes() is None

    def test_invalid_limit_rejected(self, small_config):
        with pytest.raises(ValueError):
            AdmissionController(0, config=small_config)
