"""Tests for the iterative solvers."""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, build_at_matrix
from repro.errors import ShapeError
from repro.solve import ConvergenceError, conjugate_gradient, jacobi, richardson

CONFIG = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)


def build(array):
    return build_at_matrix(COOMatrix.from_dense(array), CONFIG)


@pytest.fixture
def spd_system(rng):
    """A sparse SPD system: A = L L^T + n*I with sparse random L."""
    n = 48
    lower = np.tril(np.where(rng.random((n, n)) < 0.15, rng.random((n, n)), 0.0))
    a = lower @ lower.T + n * np.eye(n)
    x_true = rng.random(n)
    return build(a), a, x_true, a @ x_true


@pytest.fixture
def dominant_system(rng):
    """A strictly diagonally dominant sparse system (Jacobi territory)."""
    n = 40
    a = np.where(rng.random((n, n)) < 0.1, rng.uniform(-1, 1, (n, n)), 0.0)
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    x_true = rng.random(n)
    return build(a), a, x_true, a @ x_true


class TestConjugateGradient:
    def test_solves_spd(self, spd_system):
        at, a, x_true, rhs = spd_system
        result = conjugate_gradient(at, rhs, tolerance=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.solution, x_true, atol=1e-7)

    def test_residual_reported(self, spd_system):
        at, a, _, rhs = spd_system
        result = conjugate_gradient(at, rhs, tolerance=1e-12)
        actual = np.linalg.norm(rhs - a @ result.solution)
        assert actual <= 1e-8 * np.linalg.norm(rhs) + 1e-12
        assert result.residual_norm == pytest.approx(actual, abs=1e-8)

    def test_warm_start(self, spd_system):
        at, _, x_true, rhs = spd_system
        cold = conjugate_gradient(at, rhs, tolerance=1e-12)
        warm = conjugate_gradient(at, rhs, tolerance=1e-12, x0=x_true)
        assert warm.iterations <= cold.iterations

    def test_non_spd_detected(self, rng):
        n = 16
        a = np.zeros((n, n))
        a[0, 0] = -1.0  # negative curvature direction exists
        np.fill_diagonal(a[1:, 1:], 1.0)
        result = conjugate_gradient(build(a), np.ones(n), max_iterations=50)
        assert not result.converged

    def test_budget_respected(self, spd_system):
        at, _, _, rhs = spd_system
        result = conjugate_gradient(at, rhs, tolerance=0.0, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged
        with pytest.raises(ConvergenceError):
            result.raise_if_failed()


class TestJacobi:
    def test_solves_dominant(self, dominant_system):
        at, _, x_true, rhs = dominant_system
        result = jacobi(at, rhs, tolerance=1e-12, max_iterations=5000)
        assert result.converged
        np.testing.assert_allclose(result.solution, x_true, atol=1e-7)

    def test_zero_diagonal_rejected(self, rng):
        a = np.eye(8)
        a[3, 3] = 0.0
        a[3, 4] = 1.0
        with pytest.raises(ShapeError):
            jacobi(build(a), np.ones(8))


class TestRichardson:
    def test_converges_on_contractive_system(self):
        n = 12
        a = np.eye(n) * 2.0
        rhs = np.arange(1.0, n + 1.0)
        result = richardson(build(a), rhs, omega=0.4, tolerance=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.solution, rhs / 2.0, atol=1e-9)

    def test_diverges_with_bad_damping(self):
        a = np.eye(4) * 100.0
        result = richardson(build(a), np.ones(4), omega=1.0, max_iterations=20)
        assert not result.converged


class TestValidation:
    def test_non_square_rejected(self, rng):
        a = np.ones((4, 5))
        with pytest.raises(ShapeError):
            conjugate_gradient(build(a), np.ones(4))

    def test_rhs_length_checked(self):
        a = np.eye(4)
        with pytest.raises(ShapeError):
            conjugate_gradient(build(a), np.ones(5))


class TestOperatorSugar:
    def test_matmul_operator(self, rng):
        from tests.conftest import random_sparse_array

        a = random_sparse_array(rng, 20, 20, 0.3)
        at = build(a)
        result = at @ at
        np.testing.assert_allclose(result.to_dense(), a @ a, atol=1e-10)
