"""Graph analytics: multi-source BFS as sparse matrix multiplication.

The paper cites "algorithms on large graphs, for example multi-source
breadth-first-search" [Kepner & Gilbert] as a driving workload.  In the
language of linear algebra, one BFS level for all sources at once is the
product F' = F @ A of the frontier matrix F (sources x vertices) with the
adjacency matrix A.  The adjacency matrix comes from the paper's RMAT
generator, so it carries the skewed topology of the G-series.

Run:  python examples/graph_msbfs.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.generate import rmat_matrix


def multi_source_bfs(adjacency_at, sources: np.ndarray, vertices: int, config):
    """Level-synchronous BFS from every source simultaneously.

    Returns the (sources x vertices) matrix of BFS levels (-1 means
    unreachable).
    """
    num_sources = len(sources)
    levels = np.full((num_sources, vertices), -1, dtype=np.int64)
    levels[np.arange(num_sources), sources] = 0

    frontier = COOMatrix(
        num_sources,
        vertices,
        np.arange(num_sources),
        sources,
        np.ones(num_sources),
    )
    level = 0
    while frontier.nnz:
        level += 1
        product, _ = atmult(
            build_at_matrix(frontier, config), adjacency_at, config=config
        )
        reached = product.to_csr()
        rows = np.repeat(np.arange(num_sources), reached.row_nnz())
        cols = reached.indices
        fresh = levels[rows, cols] == -1
        rows, cols = rows[fresh], cols[fresh]
        levels[rows, cols] = level
        frontier = COOMatrix(
            num_sources, vertices, rows, cols, np.ones(len(rows))
        ).sum_duplicates()
    return levels


def main() -> None:
    vertices, edges = 2048, 40_000
    graph = rmat_matrix(
        vertices, edges, 0.55, 0.15, 0.15, 0.15, seed=33, values="ones"
    )
    print(f"RMAT graph: {vertices} vertices, {graph.nnz} edges (skewed a=0.55)")

    config = SystemConfig()
    adjacency = build_at_matrix(graph, config)
    print(f"adjacency as AT Matrix: {adjacency}")

    rng = np.random.default_rng(1)
    sources = rng.choice(vertices, size=16, replace=False)
    start = time.perf_counter()
    levels = multi_source_bfs(adjacency, sources, vertices, config)
    elapsed = time.perf_counter() - start

    reachable = (levels >= 0).sum(axis=1)
    eccentricity = levels.max(axis=1)
    print(f"\nmulti-source BFS from {len(sources)} sources: {elapsed:.2f} s")
    print(f"max BFS level observed: {levels.max()}")
    for i, source in enumerate(sources[:5]):
        print(f"  source {source:5d}: reaches {reachable[i]:5d} vertices, "
              f"eccentricity {eccentricity[i]}")

    # Sanity check one source against a plain queue BFS.
    from collections import deque

    adj_csr = adjacency.to_csr()
    expected = np.full(vertices, -1)
    expected[sources[0]] = 0
    queue = deque([int(sources[0])])
    while queue:
        vertex = queue.popleft()
        cols, _ = adj_csr.row_slice(vertex)
        for neighbor in cols:
            if expected[neighbor] == -1:
                expected[neighbor] = expected[vertex] + 1
                queue.append(int(neighbor))
    assert np.array_equal(levels[0], expected)
    print("\nverified against a scalar queue-based BFS")


if __name__ == "__main__":
    main()
