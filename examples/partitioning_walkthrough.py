"""Walkthrough of the partitioning process on the paper's toy example.

Paper Fig. 3 illustrates the quadtree partitioning with "a sparse 7x8
matrix and a 2x2 block granularity": (a) the raw input, (b) the Z-curve
ordering and logical atomic blocks, (c) the density map in the reduced
Z-space, and (d) the final representation after the quadtree recursion.
This script reproduces all four panels with real library calls and
printed intermediate state.

Run:  python examples/partitioning_walkthrough.py
"""

import numpy as np

from repro import COOMatrix, DensityMap, SystemConfig, build_at_matrix
from repro.viz import render_density_map, render_tile_layout
from repro.zorder.morton import morton_encode
from repro.zorder.zspace import OUT_OF_BOUNDS, ZSpace, block_counts, zspace_size


def main() -> None:
    # -- (a) raw input: a 7x8 sparse matrix with a dense upper-left area.
    raw = np.zeros((7, 8))
    raw[:4, :4] = np.array(
        [
            [1.0, 1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0, 0.0],
            [0.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 1.0, 1.0],
        ]
    )
    raw[5, 6] = 1.0
    raw[6, 1] = 1.0
    staged = COOMatrix.from_dense(raw)
    print("(a) raw 7x8 input matrix (x = non-zero):")
    for row in raw:
        print("    " + "".join("x" if v else "." for v in row))
    print(f"    {staged.nnz} non-zeros")

    # -- (b) Z-curve ordering over the padded square space.
    zordered = staged.z_ordered()
    codes = morton_encode(zordered.row_ids, zordered.col_ids)
    print(f"\n(b) Z-space: both dims pad to 8 -> K = {zspace_size(7, 8)} cells")
    print("    elements in Z order (z: row,col):")
    print(
        "    "
        + "  ".join(
            f"{int(z)}:({r},{c})"
            for z, r, c in zip(codes, zordered.row_ids, zordered.col_ids)
        )
    )

    # -- (c) ZBlockCnts: per-atomic-block counts in the reduced Z-space.
    config = SystemConfig(llc_bytes=96, b_atomic=2)  # tiny LLC: tau_d = 2
    zspace = ZSpace(7, 8, config.b_atomic)
    counts = block_counts(zordered.row_ids, zordered.col_ids, zspace)
    print(f"\n(c) ZBlockCnts over the {zspace.side_blocks}x{zspace.side_blocks} "
          f"block grid (Z order, {OUT_OF_BOUNDS} = out of bounds):")
    print("    " + " ".join(f"{int(c):2d}" for c in counts))
    dmap_text = render_density_map(
        DensityMap.from_coordinates(7, 8, staged.row_ids, staged.col_ids, 2),
        max_cells=8,
    )
    print("    density map of the blocks:")
    for line in dmap_text.splitlines():
        print("    " + line)

    # -- (d) the final AT Matrix after the quadtree recursion.
    matrix = build_at_matrix(staged, config)
    print(f"\n(d) final AT Matrix: {matrix}")
    for tile in matrix.tiles:
        print(
            f"    tile [{tile.row0}:{tile.row1}, {tile.col0}:{tile.col1}] "
            f"{tile.kind.value:>6}  nnz={tile.nnz}  "
            f"density={tile.density:.2f}"
        )
    print("    layout ('/' = dense tile):")
    for line in render_tile_layout(matrix, max_cells=8).splitlines():
        print("    " + line)

    # The dense 4x4 area melts into dense tiles; the two stray elements
    # stay in sparse tiles; empty quadrants produce no tile at all.
    assert np.allclose(matrix.to_dense(), raw)
    print("\nreconstruction verified: AT Matrix content == raw input")


if __name__ == "__main__":
    main()
