"""Memory-bounded multiplication with the water-level method.

A resource-managed system (e.g. a DBMS with memory SLAs, paper section
III-E) caps the memory of the result matrix.  ATMULT adapts the write
density threshold with the water-level method: tighter budgets push more
result tiles into the sparse representation, trading performance for
footprint — without changing the numerical result.

Run:  python examples/memory_budget.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.errors import MemoryLimitError


def main() -> None:
    rng = np.random.default_rng(5)
    n = 1024
    raw = np.where(rng.random((n, n)) < 0.01, rng.random((n, n)), 0.0)
    raw[:256, :256] = np.where(
        rng.random((256, 256)) < 0.6, rng.random((256, 256)), 0.0
    )
    staged = COOMatrix.from_dense(raw)
    config = SystemConfig()
    matrix = build_at_matrix(staged, config)
    print(f"input: {matrix}")

    # Reference run without a budget.
    unlimited, report = atmult(matrix, matrix, config=config)
    reference = unlimited.to_dense()
    full_bytes = unlimited.memory_bytes()
    sparse_floor = unlimited.to_csr().memory_bytes()
    print(f"\nunbounded result:   {full_bytes / 1e6:7.2f} MB "
          f"(write threshold {report.write_threshold:.3f})")
    print(f"all-sparse footprint would be {sparse_floor / 1e6:.2f} MB")

    print(f"\n{'budget':>12} {'actual':>10} {'threshold':>10} "
          f"{'dense tiles':>12} {'time':>9}")
    for fraction in (2.0, 1.0, 0.75, 0.5, 0.25):
        budget = full_bytes * fraction
        start = time.perf_counter()
        try:
            result, rep = atmult(
                matrix, matrix, config=config, memory_limit_bytes=budget
            )
        except MemoryLimitError as error:
            print(f"{budget / 1e6:10.2f} MB  unsatisfiable: {error}")
            continue
        elapsed = time.perf_counter() - start
        from repro import StorageKind

        dense_tiles = result.num_tiles(StorageKind.DENSE)
        print(f"{budget / 1e6:10.2f} MB {result.memory_bytes() / 1e6:8.2f} MB "
              f"{rep.write_threshold:10.3f} {dense_tiles:12d} "
              f"{elapsed * 1e3:7.1f} ms")
        assert result.memory_bytes() <= budget
        assert np.allclose(result.to_dense(), reference)

    print("\nall bounded results verified identical to the unbounded run")


if __name__ == "__main__":
    main()
