"""Gene clustering: non-negative matrix factorization on expression data.

The paper motivates mixed sparse-dense multiplication with gene
clustering [Liu et al., BIBM'13]: "the core computation contains
iterative multiplications V H^T of the large, sparse gene expression
matrix with a dense matrix."  This example runs multiplicative-update
NMF where every iteration multiplies the sparse expression matrix V
(as an AT Matrix) with small dense factor matrices through ATMULT.

Run:  python examples/gene_clustering.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.formats import coo_to_dense
from repro.formats.dense import DenseMatrix
from repro.generate import clustered_matrix


def nmf_step(v_at, v_t_at, w: np.ndarray, h: np.ndarray, config):
    """One multiplicative update of W and H for V ~ W @ H."""
    # H update: H <- H * (W^T V) / (W^T W H)
    wt_v, _ = atmult(DenseMatrix(w.T), v_at, config=config)  # (k x genes)
    numerator = wt_v.to_dense()
    denominator = (w.T @ w) @ h + 1e-9
    h = h * numerator / denominator

    # W update: W <- W * (V H^T) / (W H H^T)
    v_ht, _ = atmult(v_at, DenseMatrix(h.T), config=config)  # (samples x k)
    numerator = v_ht.to_dense()
    denominator = w @ (h @ h.T) + 1e-9
    w = w * numerator / denominator
    return w, h


def main() -> None:
    samples, genes, rank = 1024, 1024, 8
    expression = clustered_matrix(
        samples, 90_000, num_clusters=rank, cluster_fraction=0.7,
        cluster_span=0.12, seed=21,
    )
    print(f"expression matrix V: {samples} samples x {genes} genes, "
          f"nnz={expression.nnz} (density {100 * expression.density:.2f}%)")

    config = SystemConfig()
    v_at = build_at_matrix(expression, config)
    v_t_at = build_at_matrix(expression.transpose(), config)
    print(f"V as AT Matrix: {v_at}")

    rng = np.random.default_rng(0)
    w = rng.uniform(0.1, 1.0, (samples, rank))
    h = rng.uniform(0.1, 1.0, (rank, genes))

    v_dense = coo_to_dense(expression).array

    def loss() -> float:
        return float(np.linalg.norm(v_dense - w @ h))

    print(f"\ninitial reconstruction error: {loss():.1f}")
    start = time.perf_counter()
    for iteration in range(1, 11):
        w, h = nmf_step(v_at, v_t_at, w, h, config)
        if iteration % 2 == 0:
            print(f"  iteration {iteration:2d}: error {loss():.1f}")
    elapsed = time.perf_counter() - start
    print(f"10 NMF iterations in {elapsed:.2f} s "
          f"(every step runs 2 mixed sparse-dense ATMULTs)")

    # Cluster assignment = argmax factor weight per sample.
    clusters = np.argmax(w, axis=1)
    sizes = np.bincount(clusters, minlength=rank)
    print(f"\ncluster sizes: {sizes.tolist()}")
    assert sizes.max() < samples  # more than one cluster found
    print("clustering finished")


if __name__ == "__main__":
    main()
