"""Quickstart: build an AT Matrix and multiply it with ATMULT.

Builds a heterogeneous matrix (a dense block over a sparse background,
like the paper's power-network matrix R3), partitions it into adaptive
tiles, renders the layout, and multiplies it against itself — comparing
ATMULT against the naive sparse baseline.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.formats import coo_to_csr
from repro.kernels import spspsp_gemm
from repro.viz import render_density_map, render_tile_layout


def main() -> None:
    rng = np.random.default_rng(42)

    # A 1024 x 1024 matrix: hypersparse background + two dense regions.
    n = 1024
    raw = np.where(rng.random((n, n)) < 0.003, rng.random((n, n)), 0.0)
    raw[:192, :192] = rng.random((192, 192))        # dense block at origin
    raw[640:832, 640:832] = rng.random((192, 192))  # dense block mid-matrix
    staged = COOMatrix.from_dense(raw)
    print(f"input: {staged.rows} x {staged.cols}, nnz={staged.nnz}, "
          f"density={100 * staged.density:.2f}%")

    # Partition under a scaled cache configuration (b_atomic = 64 here).
    config = SystemConfig(llc_bytes=96 * 1024)
    matrix = build_at_matrix(staged, config)
    print(f"\nAT Matrix: {matrix}")
    print("\ntile layout ('/' = dense tile, grayscale = sparse density):")
    print(render_tile_layout(matrix, max_cells=32))

    # Multiply: ATMULT vs the plain sparse x sparse -> sparse baseline.
    csr = coo_to_csr(staged)
    start = time.perf_counter()
    baseline = spspsp_gemm(csr, csr)
    baseline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result, report = atmult(matrix, matrix, config=config)
    atmult_seconds = time.perf_counter() - start

    print(f"\nspspsp_gemm baseline: {baseline_seconds * 1e3:8.1f} ms")
    print(f"ATMULT:               {atmult_seconds * 1e3:8.1f} ms "
          f"({baseline_seconds / atmult_seconds:.2f}x)")
    print(f"  density estimation: {report.estimate_fraction:6.1%} of runtime")
    print(f"  dynamic optimizer:  {report.optimize_fraction:6.1%} of runtime "
          f"({report.conversions} tile conversions)")
    print(f"  kernels used: {report.kernel_counts}")

    # Verify against the baseline.
    assert np.allclose(result.to_dense(), baseline.to_dense())
    print("\nresult verified against the sparse baseline")

    print("\nresult density map:")
    print(render_density_map(result.density_map(), max_cells=32))
    print(f"result: {result}")


if __name__ == "__main__":
    main()
