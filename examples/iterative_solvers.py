"""Iterative solvers on AT Matrices: PageRank and the dominant eigenpair.

Graph algorithms "in the language of linear algebra" (the paper's [4])
run as repeated matrix-vector products.  This example keeps a skewed
RMAT web graph in an AT Matrix — its hub structure produces a dense
corner block — and drives two classic iterations over ATMV.  The advisor
is consulted first, demonstrating the paper's goal of automating the
storage decision.

Run:  python examples/iterative_solvers.py
"""

import time

import numpy as np

from repro import SystemConfig, atmv, atmv_transposed, build_at_matrix, power_iteration, recommend
from repro.generate import rmat_matrix


def pagerank(adjacency_at, *, damping=0.85, tolerance=1e-10, max_iterations=200):
    """Power-method PageRank; each step is one transposed ATMV."""
    n = adjacency_at.rows
    out_degree = atmv(adjacency_at, np.ones(n))  # row sums
    ranks = np.full(n, 1.0 / n)
    dangling = out_degree == 0.0
    inverse_degree = np.where(dangling, 0.0, 1.0 / np.maximum(out_degree, 1e-300))
    for iteration in range(1, max_iterations + 1):
        spread = atmv_transposed(adjacency_at, ranks * inverse_degree)
        dangling_mass = ranks[dangling].sum() / n
        updated = (1 - damping) / n + damping * (spread + dangling_mass)
        delta = np.abs(updated - ranks).sum()
        ranks = updated
        if delta < tolerance:
            return ranks, iteration
    return ranks, max_iterations


def main() -> None:
    vertices, edges = 4096, 60_000
    graph = rmat_matrix(
        vertices, edges, 0.6, 0.15, 0.15, 0.1, seed=17, values="ones"
    )
    config = SystemConfig()

    recommendation = recommend(graph, config)
    print("advisor report:")
    print(recommendation.summary())
    print()

    adjacency = build_at_matrix(graph, config)
    print(f"adjacency: {adjacency}")

    start = time.perf_counter()
    ranks, iterations = pagerank(adjacency)
    elapsed = time.perf_counter() - start
    top = np.argsort(ranks)[::-1][:5]
    print(f"\nPageRank converged in {iterations} iterations ({elapsed:.2f} s)")
    print("top vertices:", ", ".join(f"{v} ({ranks[v]:.2e})" for v in top))
    assert abs(ranks.sum() - 1.0) < 1e-6  # probability mass preserved

    start = time.perf_counter()
    result = power_iteration(adjacency, max_iterations=300, tolerance=1e-10)
    elapsed = time.perf_counter() - start
    print(f"\npower iteration: lambda_max ~= {result.eigenvalue:.4f} "
          f"after {result.iterations} iterations ({elapsed:.2f} s, "
          f"converged={result.converged})")

    # The dominant eigenvector concentrates on the RMAT hub region.
    heavy = np.argsort(np.abs(result.eigenvector))[::-1][:5]
    print("heaviest eigenvector entries at vertices:", heavy.tolist())
    hub_share = (heavy < vertices // 4).mean()
    print(f"share of heavy entries in the hub quadrant: {hub_share:.0%}")


if __name__ == "__main__":
    main()
