"""Solving a sparse linear system on an AT Matrix.

"Solving linear systems" opens the paper's list of driving applications.
This example assembles a 2-D Poisson/stiffness system — the same matrix
family as the paper's structural-engineering matrices R8/R9 (banded FEM
topology) — and solves it with conjugate gradients where every iteration
is a tile-granular ATMV.  A diagonally dominant variant is solved with
Jacobi for comparison.

Run:  python examples/linear_system.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, build_at_matrix, conjugate_gradient, jacobi, recommend


def poisson_2d(grid: int) -> COOMatrix:
    """The standard 5-point Laplacian on a grid x grid mesh (SPD)."""
    n = grid * grid
    rows, cols, vals = [], [], []
    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            rows.append(k), cols.append(k), vals.append(4.0)
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < grid and 0 <= nj < grid:
                    rows.append(k), cols.append(ni * grid + nj), vals.append(-1.0)
    return COOMatrix(n, n, rows, cols, vals)


def main() -> None:
    grid = 48
    system = poisson_2d(grid)
    n = system.rows
    print(f"2-D Poisson system: {n} unknowns, nnz={system.nnz} "
          f"(banded FEM topology, like the paper's R8/R9)")

    config = SystemConfig()
    print("\nadvisor verdict:")
    verdict = recommend(system, config)
    print(f"  topology class: {verdict.profile.topology_class}; "
          f"partition worthwhile: {verdict.partition_worthwhile}")

    matrix = build_at_matrix(system, config)
    print(f"\nsystem as AT Matrix: {matrix}")

    rng = np.random.default_rng(3)
    x_true = rng.random(n)
    rhs = np.array(matrix.to_csr().to_dense() @ x_true)

    start = time.perf_counter()
    cg = conjugate_gradient(matrix, rhs, tolerance=1e-10).raise_if_failed()
    cg_seconds = time.perf_counter() - start
    error = np.abs(cg.solution - x_true).max()
    print(f"\nconjugate gradients: {cg.iterations} iterations in "
          f"{cg_seconds:.2f} s, max |x - x_true| = {error:.2e}")
    assert error < 1e-6

    # A diagonally dominant variant for Jacobi.
    dominant = COOMatrix(
        n, n, system.row_ids, system.col_ids, system.values.copy()
    )
    diag_mask = dominant.row_ids == dominant.col_ids
    dominant.values[diag_mask] += 1.0  # 5 on the diagonal: strictly dominant
    dominant_at = build_at_matrix(dominant, config)
    rhs2 = np.array(dominant_at.to_csr().to_dense() @ x_true)
    start = time.perf_counter()
    jac = jacobi(dominant_at, rhs2, tolerance=1e-10, max_iterations=5000)
    jac_seconds = time.perf_counter() - start
    print(f"Jacobi (dominant variant): {jac.iterations} iterations in "
          f"{jac_seconds:.2f} s, converged={jac.converged}")
    assert jac.converged

    print("\nboth solvers verified against the constructed solution")


if __name__ == "__main__":
    main()
