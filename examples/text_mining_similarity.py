"""Text mining: document cosine similarity via D = A @ A^T.

The paper's introductory example: "a term-document matrix (A)_ij that
contains the frequency of terms j for every document i, is multiplied
with its transpose to get the cosine similarity matrix of documents
D = A A^T."  Documents cluster by topic, so the term-document matrix has
dense column groups — exactly the heterogeneous topology AT Matrices
exploit.

Run:  python examples/text_mining_similarity.py
"""

import time

import numpy as np

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.formats import coo_to_csr
from repro.kernels import spspsp_gemm


def synthesize_corpus(
    documents: int, vocabulary: int, topics: int, seed: int = 0
) -> COOMatrix:
    """A topical term-document matrix: each topic owns a vocabulary slice.

    Documents draw most terms from their topic's slice plus a tail of
    general vocabulary — giving per-topic dense column bands.
    """
    rng = np.random.default_rng(seed)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    slice_width = vocabulary // topics
    for doc in range(documents):
        topic = rng.integers(0, topics)
        topic_terms = rng.integers(
            topic * slice_width, (topic + 1) * slice_width, size=40
        )
        general_terms = rng.integers(0, vocabulary, size=10)
        terms = np.unique(np.concatenate([topic_terms, general_terms]))
        rows.append(np.full(len(terms), doc, dtype=np.int64))
        cols.append(terms.astype(np.int64))
        vals.append(rng.uniform(0.1, 3.0, size=len(terms)))  # tf-idf-ish
    return COOMatrix(
        documents,
        vocabulary,
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
    ).sum_duplicates()


def main() -> None:
    documents, vocabulary, topics = 1500, 1200, 6
    term_doc = synthesize_corpus(documents, vocabulary, topics, seed=11)
    print(f"term-document matrix: {documents} docs x {vocabulary} terms, "
          f"nnz={term_doc.nnz} (density {100 * term_doc.density:.2f}%)")

    # Normalize rows so A @ A^T is the cosine similarity.
    norms = np.zeros(documents)
    np.add.at(norms, term_doc.row_ids, term_doc.values**2)
    term_doc.values /= np.sqrt(norms)[term_doc.row_ids]

    config = SystemConfig()
    a = build_at_matrix(term_doc, config)
    a_t = build_at_matrix(term_doc.transpose(), config)
    print(f"A as AT Matrix:  {a}")
    print(f"A^T as AT Matrix: {a_t}")

    start = time.perf_counter()
    similarity, report = atmult(a, a_t, config=config)
    elapsed = time.perf_counter() - start
    print(f"\nATMULT D = A A^T: {elapsed * 1e3:.1f} ms, result {similarity}")
    print(f"kernels: {report.kernel_counts}")

    csr = coo_to_csr(term_doc)
    csr_t = coo_to_csr(term_doc.transpose())
    start = time.perf_counter()
    baseline = spspsp_gemm(csr, csr_t)
    baseline_elapsed = time.perf_counter() - start
    print(f"spspsp baseline:  {baseline_elapsed * 1e3:.1f} ms "
          f"-> ATMULT speedup {baseline_elapsed / elapsed:.2f}x")

    # Report the most similar document pair (off-diagonal).
    sim = similarity.to_csr()
    best_score = 0.0
    best_pair = (0, 0)
    for row in range(sim.rows):
        cols, vals = sim.row_slice(row)
        for col, val in zip(cols, vals):
            if col > row and val > best_score:
                best_score = float(val)
                best_pair = (row, int(col))
    print(f"\nmost similar documents: {best_pair} "
          f"(cosine similarity {best_score:.3f})")
    assert np.allclose(similarity.to_dense(), baseline.to_dense(), atol=1e-9)
    print("verified against the sparse baseline")


if __name__ == "__main__":
    main()
